(* SLA-aware objectives: tenant/group tags on instances, the
   weighted-group-completion objective, the priority reordering
   post-pass, the sla-greedy planner, and the independent SLA
   certifier — including tamper detection on forged claims. *)

module M = Migration
module O = M.Objective
module Multigraph = Mgraph.Multigraph
open Test_util

let tenants = Option.get (Gen.family_of_string "tenants")

let sorted_edges sched =
  M.Schedule.rounds sched |> Array.to_list |> List.concat
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* instance tagging *)

let test_tagged_roundtrip () =
  for seed = 0 to 6 do
    let inst = Gen.instance tenants ~seed ~size:12 in
    Alcotest.(check bool) "tenants instances are tagged" true
      (M.Instance.tagged inst);
    let rt = M.Instance.of_string (M.Instance.to_string inst) in
    Alcotest.(check string) "to_string/of_string round-trips tags"
      (M.Instance.to_string inst)
      (M.Instance.to_string rt);
    Alcotest.(check (array int)) "groups survive"
      (M.Instance.groups inst) (M.Instance.groups rt);
    Alcotest.(check (array int)) "weights survive"
      (M.Instance.weights inst) (M.Instance.weights rt)
  done

let test_untagged_format_stable () =
  (* untagged instances must keep the legacy wire format: no "groups"
     block, so execution digests over old instances never change *)
  let g = Multigraph.create ~n:3 () in
  ignore (Multigraph.add_edge g 0 1);
  ignore (Multigraph.add_edge g 1 2);
  let inst = M.Instance.create g ~caps:[| 1; 2; 1 |] in
  let s = M.Instance.to_string inst in
  Alcotest.(check bool) "no groups token" false
    (String.split_on_char '\n' s |> List.exists (fun l ->
         String.length l >= 6 && String.sub l 0 6 = "groups"));
  Alcotest.(check int) "implicit single group" 1 (M.Instance.n_groups inst);
  Alcotest.(check bool) "untagged" false (M.Instance.tagged inst)

let test_decompose_preserves_groups () =
  for seed = 0 to 4 do
    let inst = Gen.instance tenants ~seed ~size:10 in
    let comps = M.Instance.decompose inst in
    List.iter
      (fun (c : M.Instance.component) ->
        Array.iteri
          (fun local global ->
            Alcotest.(check int)
              (Printf.sprintf "seed %d edge %d group" seed global)
              (M.Instance.group inst global)
              (M.Instance.group c.M.Instance.instance local))
          c.M.Instance.edges)
      comps
  done

(* ------------------------------------------------------------------ *)
(* the reordering post-pass *)

let reorder_preserves =
  qtest "reorder: same edge multiset, same makespan, certified" ~count:60
    QCheck2.Gen.(
      let* seed = int_bound 1_000 in
      let* size = int_range 4 20 in
      return (seed, size))
    (fun (seed, size) ->
      let inst = Gen.instance tenants ~seed ~size in
      let sched = M.plan ~rng:(rng_of_int seed) Auto inst in
      let r = O.reorder inst sched in
      sorted_edges r = sorted_edges sched
      && M.Schedule.n_rounds r = M.Schedule.n_rounds sched
      && M.Schedule.validate inst r = Ok ()
      && M.Certify.sla_ok
           (M.Certify.check_sla inst r (O.claim ~reordered:true inst r)))

let test_reorder_untagged_noop_semantics () =
  (* one implicit group: reordering may permute rounds but the single
     group's completion is the makespan either way *)
  let g = Multigraph.create ~n:4 () in
  ignore (Multigraph.add_edge g 0 1);
  ignore (Multigraph.add_edge g 2 3);
  ignore (Multigraph.add_edge g 0 1);
  let untagged = M.Instance.create g ~caps:[| 1; 1; 1; 1 |] in
  let sched = M.plan ~rng:(rng_of_int 3) Auto untagged in
  let r = O.reorder untagged sched in
  Alcotest.(check int) "same rounds"
    (M.Schedule.n_rounds sched) (M.Schedule.n_rounds r);
  Alcotest.(check int) "C_0 = makespan"
    (M.Schedule.n_rounds r)
    (O.completion_rounds untagged r).(0)

(* ------------------------------------------------------------------ *)
(* the certifier *)

let plan_with_claim seed size =
  let inst = Gen.instance tenants ~seed ~size in
  let sched = O.reorder inst (M.plan ~rng:(rng_of_int seed) Auto inst) in
  (inst, sched, O.claim ~solver:"auto" ~reordered:true inst sched)

let test_certifier_accepts_honest () =
  for seed = 0 to 5 do
    let inst, sched, claim = plan_with_claim seed 12 in
    let v = M.Certify.check_sla inst sched claim in
    if not (M.Certify.sla_ok v) then
      Alcotest.failf "seed %d rejected: %s" seed
        (String.concat "; "
           (List.map M.Certify.sla_violation_to_string
              v.M.Certify.sla_violations))
  done

let test_certifier_rejects_forged_completion () =
  let inst, sched, claim = plan_with_claim 7 12 in
  (* forge the first group's completion one round early — the classic
     SLA lie.  The certifier re-derives C_g from the rounds alone, so
     the forgery must surface as a completion mismatch *)
  let forged =
    {
      claim with
      M.Certify.sla_completions =
        (match claim.M.Certify.sla_completions with
        | (g, c) :: rest -> (g, max 1 (c - 1)) :: rest
        | [] -> Alcotest.fail "no completions claimed");
    }
  in
  let v = M.Certify.check_sla inst sched forged in
  Alcotest.(check bool) "forged C_g rejected" false (M.Certify.sla_ok v);
  let is_mismatch = function
    | M.Certify.Sla_completion_mismatch _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "violation names the mismatch" true
    (List.exists is_mismatch v.M.Certify.sla_violations)

let test_certifier_rejects_forged_sum () =
  let inst, sched, claim = plan_with_claim 8 12 in
  let forged =
    { claim with M.Certify.sla_weighted_sum = claim.M.Certify.sla_weighted_sum - 1 }
  in
  let v = M.Certify.check_sla inst sched forged in
  Alcotest.(check bool) "forged sum rejected" false (M.Certify.sla_ok v);
  Alcotest.(check bool) "violation names the sum" true
    (List.exists
       (function M.Certify.Sla_weighted_sum_mismatch _ -> true | _ -> false)
       v.M.Certify.sla_violations)

let test_certifier_catches_inversion () =
  (* two groups on disjoint disks: group 1 (weight 5) could run in
     round 1, but the schedule serves only group 0 (weight 1) first
     while claiming the reordering invariant — a priority inversion *)
  let g = Multigraph.create ~n:4 () in
  let _e0 = Multigraph.add_edge g 0 1 in
  let _e1 = Multigraph.add_edge g 2 3 in
  let inst =
    M.Instance.create ~groups:[| 0; 1 |] ~weights:[| 1; 5 |] g
      ~caps:[| 1; 1; 1; 1 |]
  in
  let inverted = M.Schedule.of_rounds [| [ 0 ]; [ 1 ] |] in
  let claim = O.claim ~reordered:true inst inverted in
  let v = M.Certify.check_sla inst inverted claim in
  Alcotest.(check bool) "inversion rejected" false (M.Certify.sla_ok v);
  Alcotest.(check bool) "violation is the inversion" true
    (List.exists
       (function M.Certify.Sla_priority_inversion _ -> true | _ -> false)
       v.M.Certify.sla_violations);
  (* the honest order passes *)
  let honest = M.Schedule.of_rounds [| [ 1 ]; [ 0 ] |] in
  let v' = M.Certify.check_sla inst honest (O.claim ~reordered:true inst honest) in
  Alcotest.(check bool) "honest order certified" true (M.Certify.sla_ok v')

(* ------------------------------------------------------------------ *)
(* the sla-greedy planner *)

let sla_greedy_certifies =
  qtest "sla-greedy: valid and SLA-certified on tagged instances"
    ~count:40
    QCheck2.Gen.(
      let* seed = int_bound 1_000 in
      let* size = int_range 4 16 in
      return (seed, size))
    (fun (seed, size) ->
      let inst = Gen.instance tenants ~seed ~size in
      let sched =
        O.reorder inst
          (M.Solver.solve ~rng:(rng_of_int seed) O.sla_greedy inst)
      in
      M.Schedule.validate inst sched = Ok ()
      && M.Certify.sla_ok
           (M.Certify.check_sla inst sched
              (O.claim ~solver:"sla-greedy" ~reordered:true inst sched)))

let test_priority_order () =
  let g = Multigraph.create ~n:6 () in
  for i = 0 to 2 do
    ignore (Multigraph.add_edge g (2 * i) ((2 * i) + 1))
  done;
  let inst =
    M.Instance.create ~groups:[| 0; 1; 2 |] ~weights:[| 2; 7; 2 |] g
      ~caps:(Array.make 6 1)
  in
  (* weight descending, group id ascending on ties *)
  Alcotest.(check (array int)) "order" [| 1; 0; 2 |] (O.priority_order inst)

let () =
  Alcotest.run "sla"
    [
      ( "instance",
        [
          Alcotest.test_case "tenants tags round-trip" `Quick
            test_tagged_roundtrip;
          Alcotest.test_case "untagged wire format unchanged" `Quick
            test_untagged_format_stable;
          Alcotest.test_case "decompose preserves group tags" `Quick
            test_decompose_preserves_groups;
        ] );
      ( "reorder",
        [
          reorder_preserves;
          Alcotest.test_case "single implicit group" `Quick
            test_reorder_untagged_noop_semantics;
        ] );
      ( "certify",
        [
          Alcotest.test_case "honest claims certified" `Quick
            test_certifier_accepts_honest;
          Alcotest.test_case "forged C_g rejected" `Quick
            test_certifier_rejects_forged_completion;
          Alcotest.test_case "forged weighted sum rejected" `Quick
            test_certifier_rejects_forged_sum;
          Alcotest.test_case "priority inversion rejected" `Quick
            test_certifier_catches_inversion;
        ] );
      ( "planner",
        [
          sla_greedy_certifies;
          Alcotest.test_case "priority order" `Quick test_priority_order;
        ] );
    ]
