(* Golden regression tests over the curated instance corpus in
   data/instances/: load each file, check the certified bounds, plan
   with every applicable algorithm, validate, and pin the achieved
   round counts.  A planner regression that costs rounds anywhere
   fails here with the instance named. *)

module M = Migration
open Test_util

let corpus_dir =
  (* dune runs tests from the build sandbox; data/ is a source dep.
     CORPUS_DIR overrides the search so the same binary also replays a
     corpus from a CLI checkout (e.g. fuzz reproducers just written). *)
  let candidates =
    (match Sys.getenv_opt "CORPUS_DIR" with Some d -> [ d ] | None -> [])
    @ [ "data/instances"; "../data/instances"; "../../data/instances" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some d -> d
  | None -> Alcotest.fail "corpus directory not found"

(* the fuzz harness writes shrunk failing reproducers next to the
   curated corpus; every file that shows up there is replayed here *)
let regressions_dir = Filename.concat (Filename.dirname corpus_dir) "regressions"

let load_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      M.Instance.of_string (really_input_string ic (in_channel_length ic)))

let load name = load_file (Filename.concat corpus_dir name)

let regression_files =
  if Sys.file_exists regressions_dir && Sys.is_directory regressions_dir then
    Sys.readdir regressions_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".inst")
    |> List.sort compare
  else []

(* per instance: (file, expected lb1, expected gamma, expected rounds
   achievable by the general planner) *)
let golden =
  [
    ("fig1.inst", 4, 3, 4);
    ("triangle10_c1.inst", 20, 30, 30);
    ("k5x8_c1.inst", 32, 40, 40);
    ("even_mixed.inst", 10, 6, 10);
    ("hetero_medium.inst", 32, 9, 32);
    ("powerlaw.inst", 45, 14, 45);
    ("clustered.inst", 47, 23, 47);
    ("two_pools.inst", 3, 2, 3);
  ]

let test_golden (file, lb1, gamma, rounds) () =
  let inst = load file in
  let rng = rng_of_int 1 in
  Alcotest.(check int) (file ^ " lb1") lb1 (M.Lower_bounds.lb1 inst);
  Alcotest.(check int) (file ^ " gamma") gamma (M.Lower_bounds.lb2 ~rng inst);
  let sched = M.Hetero_coloring.schedule ~rng:(rng_of_int 2) inst in
  check_valid_schedule inst sched file;
  Alcotest.(check int) (file ^ " rounds") rounds (M.Schedule.n_rounds sched)

let test_all_algorithms_on_corpus () =
  List.iter
    (fun (file, _, _, _) ->
      let inst = load file in
      List.iter
        (fun alg ->
          if alg <> M.Even_opt || M.Instance.all_caps_even inst then begin
            let sched = M.plan ~rng:(rng_of_int 3) alg inst in
            match M.Schedule.validate inst sched with
            | Ok () -> ()
            | Error msg ->
                Alcotest.failf "%s with %s: %s" file
                  (M.algorithm_to_string alg)
                  msg
          end)
        M.all_algorithms)
    golden

(* a regression instance once broke some planner: re-run every
   registered solver through the pipeline and certify independently *)
let test_regression file () =
  let inst = load_file (Filename.concat regressions_dir file) in
  let lb = M.Lower_bounds.lower_bound ~rng:(rng_of_int 1) inst in
  List.iter
    (fun name ->
      match M.Solver.find name with
      | None -> ()
      | Some s ->
          if s.M.Solver.can_solve inst then begin
            match M.Pipeline.plan_report ~rng:(rng_of_int 2) name inst with
            | None -> ()
            | Some (sched, _) ->
                let v = M.Certify.check ~lb ~solver:name inst sched in
                if not (M.Certify.ok v) then
                  Alcotest.failf "%s with %s: %s" file name
                    (String.concat "; "
                       (List.map M.Certify.violation_to_string
                          v.M.Certify.violations))
          end)
    (M.Solver.names ())

(* service-soak reproducers land in the same corpus (written by
   `migrate fuzz --service`): replay each regression instance through
   a fault-free soak — the concatenated flight log must certify *)
let test_regression_service file () =
  let inst = load_file (Filename.concat regressions_dir file) in
  match Service.soak ~epoch_rounds:4 ~inst ~seed:1 () with
  | Ok _ -> ()
  | Error msgs ->
      Alcotest.failf "%s: service soak: %s" file (String.concat "; " msgs)

(* distributed-soak reproducers (written by `migrate fuzz
   --distributed` as <family>_s<seed>_dist.inst) land here too: replay
   each regression through a fault-free coordinator/worker run — it
   must converge to a certifier-clean flight log byte-identical to the
   in-process engine's.  Safe to fork: every test in this binary plans
   with jobs=1, so no domain has ever been spawned. *)
let test_regression_distributed file () =
  let inst = load_file (Filename.concat regressions_dir file) in
  let state_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "corpus_dist.%d.%s" (Unix.getpid ()) file)
  in
  let cleanup () =
    if Sys.file_exists state_dir then begin
      Array.iter
        (fun f -> try Sys.remove (Filename.concat state_dir f) with _ -> ())
        (Sys.readdir state_dir);
      try Sys.rmdir state_dir with _ -> ()
    end
  in
  cleanup ();
  Fun.protect ~finally:cleanup @@ fun () ->
  match
    Distproto.Runner.run ~workers:2 ~seed:1 ~state_dir inst
  with
  | Error msg -> Alcotest.failf "%s: distributed run: %s" file msg
  | Ok (Distproto.Runner.Interrupted _) ->
      Alcotest.failf "%s: distributed run interrupted without a kill" file
  | Ok (Distproto.Runner.Completed o) ->
      let v = M.Certify.certify_execution o.Distproto.Runner.execution in
      if not (M.Certify.exec_ok v) then
        Alcotest.failf "%s: distributed flight log failed certification" file;
      let reference =
        M.Engine.run
          ~rng:(Distproto.Runner.plan_rng 1)
          ~jobs:1 ~policy:M.Engine.no_faults inst
      in
      Alcotest.(check string)
        (file ^ " distributed flight log matches the engine")
        (M.Certify.execution_to_string reference.M.Engine.execution)
        (M.Certify.execution_to_string o.Distproto.Runner.execution)

let test_corpus_roundtrips () =
  List.iter
    (fun (file, _, _, _) ->
      let inst = load file in
      let inst' = M.Instance.of_string (M.Instance.to_string inst) in
      Alcotest.(check int) (file ^ " items survive roundtrip")
        (M.Instance.n_items inst) (M.Instance.n_items inst'))
    golden

let () =
  Alcotest.run "corpus"
    [
      ( "golden",
        List.map
          (fun ((file, _, _, _) as entry) ->
            Alcotest.test_case file `Quick (test_golden entry))
          golden );
      ( "sweep",
        [
          Alcotest.test_case "all algorithms validate" `Quick
            test_all_algorithms_on_corpus;
          Alcotest.test_case "serialization roundtrips" `Quick
            test_corpus_roundtrips;
        ] );
      ( "regressions",
        List.concat_map
          (fun file ->
            [
              Alcotest.test_case file `Quick (test_regression file);
              Alcotest.test_case (file ^ " (service soak)") `Quick
                (test_regression_service file);
              Alcotest.test_case (file ^ " (distributed)") `Quick
                (test_regression_distributed file);
            ])
          regression_files );
    ]
