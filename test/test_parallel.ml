(* The determinism contract of the parallel engine: Exec.map agrees
   with List.map, Pipeline.solve and Gen.Fuzz.run are bit-identical at
   every --jobs value, and parallel schedules certify clean. *)

module M = Migration
module Multigraph = Mgraph.Multigraph
open Test_util

(* CI runs the suite at TEST_JOBS=2 (the runners have two cores);
   locally the default exercises more interleavings. *)
let jobs_hi =
  match Sys.getenv_opt "TEST_JOBS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 1 -> n | _ -> 4)
  | None -> 4

(* ------------------------------------------------------------------ *)
(* the executor itself *)

exception Boom of int

let list_gen = QCheck2.Gen.(list_size (int_bound 200) (int_bound 10_000))

let prop_map_matches_list_map xs =
  let f x = (x * 31) + (x mod 7) in
  Exec.with_pool ~jobs:jobs_hi (fun pool ->
      Exec.map ~pool f xs = List.map f xs)

let test_map_edge_cases () =
  Exec.with_pool ~jobs:jobs_hi (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Exec.map ~pool Fun.id []);
      Alcotest.(check (list int)) "singleton" [ 7 ]
        (Exec.map ~pool (fun x -> x + 1) [ 6 ]);
      Alcotest.(check (list int)) "no pool = sequential" [ 2; 3 ]
        (Exec.map (fun x -> x + 1) [ 1; 2 ]))

let test_exception_propagates () =
  Exec.with_pool ~jobs:jobs_hi (fun pool ->
      (* first failing element in submission order wins, whatever the
         domain interleaving *)
      let f x = if x mod 10 = 3 then raise (Boom x) else x in
      (match Exec.map ~pool f (List.init 50 Fun.id) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom x -> Alcotest.(check int) "earliest failure" 3 x);
      (* the pool survives: later submissions are not poisoned *)
      Alcotest.(check (list int)) "pool survives a raising task"
        [ 0; 2; 4; 6 ]
        (Exec.map ~pool (fun x -> 2 * x) [ 0; 1; 2; 3 ]))

let test_shutdown_idempotent () =
  let pool = Exec.create ~jobs:jobs_hi in
  Alcotest.(check (list int)) "live" [ 1; 4; 9 ]
    (Exec.map ~pool (fun x -> x * x) [ 1; 2; 3 ]);
  Exec.shutdown pool;
  Exec.shutdown pool;
  (* a shut-down pool degrades to sequential, it does not wedge *)
  Alcotest.(check (list int)) "after shutdown" [ 2; 4 ]
    (Exec.map ~pool (fun x -> 2 * x) [ 1; 2 ])

(* ------------------------------------------------------------------ *)
(* probe accounting under worker domains *)

(* Four domains hammering one counter/timer pair, plus per-task
   registration of an already-registered cell (the racy lookup path).
   With the pre-Atomic Probes this loses updates with near certainty;
   the contract is that parallel counts match the sequential run
   exactly. *)
let test_probe_counts_parallel () =
  let c = M.Instr.counter "stress.bumps" in
  let t = M.Instr.timer "stress.spans" in
  let tasks = List.init 400 Fun.id in
  let work i =
    (* re-registration from worker domains must hand back the same cell *)
    let c' = M.Instr.counter "stress.bumps" in
    for _ = 1 to 250 do
      M.Instr.bump c'
    done;
    M.Instr.bump ~by:2 c;
    M.Instr.record t 0.001;
    i
  in
  M.Instr.reset ();
  let expected_list = List.map work tasks in
  let seq_count = M.Instr.counter_value c in
  let seq_spans =
    let snap = M.Instr.snapshot () in
    match List.assoc_opt "stress.spans" snap.M.Instr.timers with
    | Some sp -> sp.M.Instr.count
    | None -> 0
  in
  M.Instr.reset ();
  Alcotest.(check int) "reset zeroes the counter" 0 (M.Instr.counter_value c);
  let par_list =
    Exec.with_pool ~jobs:4 (fun pool -> Exec.map ~pool work tasks)
  in
  let par_count = M.Instr.counter_value c in
  let par_spans =
    let snap = M.Instr.snapshot () in
    match List.assoc_opt "stress.spans" snap.M.Instr.timers with
    | Some sp -> sp.M.Instr.count
    | None -> 0
  in
  Alcotest.(check (list int)) "results identical" expected_list par_list;
  Alcotest.(check int) "bump total: --jobs 4 = sequential" seq_count par_count;
  Alcotest.(check int) "span count: --jobs 4 = sequential" seq_spans par_spans;
  Alcotest.(check int) "no lost bumps" (400 * 252) par_count

(* ------------------------------------------------------------------ *)
(* pipeline: jobs-independence on every generator family *)

let schedule_fingerprint sched =
  (M.Schedule.n_rounds sched, M.Schedule.to_string sched)

let solve_at ~jobs ~seed inst =
  M.Pipeline.solve ~rng:(rng_of_int seed) ~jobs
    ~choose:M.Pipeline.auto_choose inst

let prop_family_jobs_independent fam (seed, size) =
  let inst = Gen.instance fam ~seed ~size in
  let s1, r1 = solve_at ~jobs:1 ~seed inst in
  let sp, rp = solve_at ~jobs:jobs_hi ~seed inst in
  Alcotest.(check (pair int string))
    (fam.Gen.name ^ ": schedule identical across jobs")
    (schedule_fingerprint s1) (schedule_fingerprint sp);
  Alcotest.(check int)
    (fam.Gen.name ^ ": same component count")
    r1.M.Pipeline.components rp.M.Pipeline.components;
  (* the parallel result certifies clean on its own merits *)
  let v = M.Certify.check inst sp in
  Alcotest.(check int)
    (fam.Gen.name ^ ": zero violations")
    0
    (List.length v.M.Certify.violations);
  M.Certify.ok v

let family_tests =
  List.map
    (fun fam ->
      qtest
        (Printf.sprintf "%s: jobs:%d = jobs:1 and certifies" fam.Gen.name
           jobs_hi)
        ~count:200
        QCheck2.Gen.(pair (int_bound 100_000) (int_range 4 10))
        (prop_family_jobs_independent fam))
    Gen.all

(* disjoint unions force the multi-component (parallel) path *)
let disjoint_union ia ib =
  let ga = M.Instance.graph ia and gb = M.Instance.graph ib in
  let na = Multigraph.n_nodes ga in
  let g = Multigraph.create ~n:(na + Multigraph.n_nodes gb) () in
  Multigraph.iter_edges ga (fun { Multigraph.u; v; _ } ->
      ignore (Multigraph.add_edge g u v));
  Multigraph.iter_edges gb (fun { Multigraph.u; v; _ } ->
      ignore (Multigraph.add_edge g (na + u) (na + v)));
  M.Instance.create g
    ~caps:(Array.append (M.Instance.caps ia) (M.Instance.caps ib))

let multi_spec_gen =
  QCheck2.Gen.(
    let* a = instance_spec_gen ~max_n:8 ~max_m:20 () in
    let* b = instance_spec_gen ~max_n:8 ~max_m:20 () in
    let* seed = int_bound 100_000 in
    return (a, b, seed))

let prop_multi_component_jobs_independent (sa, sb, seed) =
  let inst = disjoint_union (instance_of_spec sa) (instance_of_spec sb) in
  let s1, _ = solve_at ~jobs:1 ~seed inst in
  let sp, _ = solve_at ~jobs:jobs_hi ~seed inst in
  check_valid_schedule inst sp "parallel multi-component";
  schedule_fingerprint s1 = schedule_fingerprint sp

(* ------------------------------------------------------------------ *)
(* fuzz report determinism across jobs *)

let string_of_report (r : Gen.Fuzz.report) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (fr : Gen.Fuzz.family_report) ->
      Buffer.add_string buf
        (Printf.sprintf "family %s instances=%d\n" fr.Gen.Fuzz.family
           fr.Gen.Fuzz.instances);
      List.iter
        (fun (s : Gen.Fuzz.solver_stats) ->
          Buffer.add_string buf
            (Printf.sprintf "  %s runs=%d certified=%d max_gap=%d gaps=[%s]\n"
               s.Gen.Fuzz.solver s.Gen.Fuzz.runs s.Gen.Fuzz.certified
               s.Gen.Fuzz.max_gap
               (String.concat ";"
                  (List.map
                     (fun (g, c) -> Printf.sprintf "%d:%d" g c)
                     s.Gen.Fuzz.gaps))))
        fr.Gen.Fuzz.per_solver)
    r.Gen.Fuzz.family_reports;
  Buffer.add_string buf
    (Printf.sprintf "totals %d %d\n" r.Gen.Fuzz.total_instances
       r.Gen.Fuzz.total_runs);
  List.iter
    (fun (f : Gen.Fuzz.failure) ->
      Buffer.add_string buf
        (Printf.sprintf "failure %s seed=%d size=%d solver=%s\n%s\n%s\n%s\n"
           f.Gen.Fuzz.family f.Gen.Fuzz.seed f.Gen.Fuzz.size f.Gen.Fuzz.solver
           (String.concat "|" f.Gen.Fuzz.messages)
           (M.Instance.to_string f.Gen.Fuzz.instance)
           (M.Instance.to_string f.Gen.Fuzz.shrunk)))
    r.Gen.Fuzz.failures;
  Buffer.contents buf

let test_fuzz_jobs_independent () =
  let run jobs =
    M.Instr.reset ();
    Gen.Fuzz.run ~size:8 ~jobs ~families:Gen.all ~count:2 ~seed:33 ()
  in
  let r1 = string_of_report (run 1) in
  let rp = string_of_report (run jobs_hi) in
  Alcotest.(check string) "byte-identical reports" r1 rp

(* default_jobs reads MIGRATE_JOBS exactly once per process: a worker
   process that mutates the env mid-run (putenv is not thread-safe
   either) must not make two calls observe different job counts.  The
   regression: it used to re-read the env on every call. *)
let test_default_jobs_memoized () =
  let before = Exec.default_jobs () in
  let saved = Option.value (Sys.getenv_opt "MIGRATE_JOBS") ~default:"" in
  Unix.putenv "MIGRATE_JOBS" (string_of_int (before + 7));
  Fun.protect ~finally:(fun () -> Unix.putenv "MIGRATE_JOBS" saved)
  @@ fun () ->
  Alcotest.(check int) "env mutation after first call is invisible" before
    (Exec.default_jobs ());
  Unix.putenv "MIGRATE_JOBS" "garbage";
  Alcotest.(check int) "unparsable mutation is invisible too" before
    (Exec.default_jobs ())

let () =
  Alcotest.run "parallel"
    [
      ( "exec",
        [
          Alcotest.test_case "default_jobs memoized" `Quick
            test_default_jobs_memoized;
          qtest "Exec.map = List.map" ~count:100 list_gen
            prop_map_matches_list_map;
          Alcotest.test_case "edge cases" `Quick test_map_edge_cases;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagates;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_shutdown_idempotent;
          Alcotest.test_case "probe counts: --jobs 4 = sequential" `Quick
            test_probe_counts_parallel;
        ] );
      ("pipeline-families", family_tests);
      ( "pipeline-components",
        [
          qtest "disjoint union: parallel = sequential" ~count:120
            multi_spec_gen prop_multi_component_jobs_independent;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "report identical across jobs" `Quick
            test_fuzz_jobs_independent;
        ] );
    ]
