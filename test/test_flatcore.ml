(* The flat-core contract suite: CSR/arena kernels vs their pre-CSR
   references.

   - qcheck differential props: the [Multigraph.Slow] oracles
     (original list/Hashtbl code) must agree with the CSR paths on
     instances drawn from every generator family;
   - the incident-order pin: [incident] IS the CSR row, in canonical
     insertion order — kernels index the frozen arrays relying on it;
   - golden replay: every row of data/golden/schedules.tsv (generated
     by the pre-CSR planners) must reproduce byte-identically, RNG
     draw for RNG draw;
   - arena discipline: poisoned handles raise [Stale], steady-state
     checkout of a pooled size class reuses the same physical array. *)

module M = Migration
module Multigraph = Mgraph.Multigraph
module Arena = Mgraph.Arena
open Test_util

(* ------------------------------------------------------------------ *)
(* Slow ≡ CSR differential props, across all generator families *)

(* a (family, seed, size) triple is a complete reproducer, so the
   qcheck shrinker output alone names the failing instance *)
let fam_gen =
  let open QCheck2.Gen in
  let n_fam = List.length Gen.all in
  map
    (fun (fi, seed, size) -> (List.nth Gen.all fi, seed, size))
    (triple (int_range 0 (n_fam - 1)) (int_range 1 999) (int_range 4 12))

let graph_of (fam, seed, size) =
  M.Instance.graph (Gen.instance fam ~seed ~size)

let graph_repr g =
  (Format.asprintf "%a" Multigraph.pp g, Multigraph.edges g)

let prop_incident (spec : Gen.family * int * int) =
  let g = graph_of spec in
  let ok = ref true in
  for v = 0 to Multigraph.n_nodes g - 1 do
    if Multigraph.incident g v <> Multigraph.Slow.incident g v then ok := false
  done;
  !ok

let prop_multiplicity spec =
  let g = graph_of spec in
  let n = Multigraph.n_nodes g in
  let ok = ref true in
  let check u v =
    if Multigraph.multiplicity g u v <> Multigraph.Slow.multiplicity g u v
    then ok := false
  in
  (* every realized pair, plus pairs that are (usually) absent *)
  Multigraph.iter_edges g (fun { Multigraph.u; v; _ } ->
      check u v;
      check v u);
  if n > 1 then begin
    check 0 (n - 1);
    check (n - 1) 0
  end;
  !ok
  && Multigraph.max_multiplicity g = Multigraph.Slow.max_multiplicity g
  && Multigraph.is_simple g = Multigraph.Slow.is_simple g

let prop_sub spec =
  let g = graph_of spec in
  let agree keep =
    let fast, fmap = Multigraph.sub g keep in
    let slow, smap = Multigraph.Slow.sub g keep in
    graph_repr fast = graph_repr slow && fmap = smap
  in
  agree (fun v -> v land 1 = 0)
  && agree (fun v -> v mod 3 <> 0)
  && agree (fun _ -> true)
  && agree (fun _ -> false)

(* incident = the CSR row's edge ids, in canonical insertion order *)
let prop_incident_order spec =
  let g = graph_of spec in
  let csr = Multigraph.freeze g in
  let ok = ref true in
  for v = 0 to Multigraph.n_nodes g - 1 do
    let row = ref [] in
    for s = Multigraph.Csr.row_stop csr v - 1
        downto Multigraph.Csr.row_start csr v do
      row := csr.Multigraph.Csr.edge_ids.(s) :: !row
    done;
    if Multigraph.incident g v <> !row then ok := false
  done;
  !ok

(* ------------------------------------------------------------------ *)
(* golden replay *)

let golden_path =
  let candidates =
    [
      "data/golden/schedules.tsv";
      "../data/golden/schedules.tsv";
      "../../data/golden/schedules.tsv";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.fail "golden corpus data/golden/schedules.tsv not found"

let test_golden_replay () =
  let text =
    let ic = open_in_bin golden_path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let rows = M.Golden.parse_rows text in
  Alcotest.(check bool) "corpus non-empty" true (rows <> []);
  List.iter
    (fun (r : M.Golden.row) ->
      let where =
        Printf.sprintf "%s seed=%d size=%d %s" r.family r.seed r.size r.solver
      in
      match Gen.family_of_string r.family with
      | None -> Alcotest.fail (where ^ ": unknown family")
      | Some fam -> (
          let inst = Gen.instance fam ~seed:r.seed ~size:r.size in
          match M.Golden.fingerprint inst ~solver:r.solver ~seed:r.seed with
          | None -> Alcotest.fail (where ^ ": solver now rejects the instance")
          | Some fp ->
              Alcotest.(check int) (where ^ " rounds") r.rounds fp.rounds;
              Alcotest.(check string) (where ^ " digest") r.digest fp.digest))
    rows

(* ------------------------------------------------------------------ *)
(* arena discipline *)

let test_arena_poisoning () =
  let a = Arena.create () in
  let h = Arena.ints a ~len:8 ~fill:7 in
  let arr = Arena.arr h in
  for i = 0 to 7 do
    Alcotest.(check int) "filled" 7 arr.(i)
  done;
  Alcotest.(check int) "outstanding" 1 (Arena.outstanding a);
  Arena.release a h;
  Alcotest.(check int) "outstanding after release" 0 (Arena.outstanding a);
  Alcotest.check_raises "arr after release" Arena.Stale (fun () ->
      ignore (Arena.arr h));
  Alcotest.check_raises "double release" Arena.Stale (fun () ->
      Arena.release a h)

let test_arena_reuse () =
  let a = Arena.create () in
  let h1 = Arena.ints a ~len:8 ~fill:0 in
  let a1 = Arena.arr h1 in
  Arena.release a h1;
  (* same size class -> the pooled array comes back: steady state
     allocates nothing, which is what the bench gate's bytes-per-edge
     budget rests on *)
  let h2 = Arena.ints a ~len:6 ~fill:1 in
  let a2 = Arena.arr h2 in
  Alcotest.(check bool) "pooled array reused" true (a1 == a2);
  for i = 0 to 5 do
    Alcotest.(check int) "refilled" 1 a2.(i)
  done;
  Arena.release a h2

let test_arena_local_per_domain () =
  let here = Arena.local () in
  Alcotest.(check bool) "stable within a domain" true (here == Arena.local ());
  let there = Domain.join (Domain.spawn (fun () -> Arena.local ())) in
  Alcotest.(check bool) "distinct across domains" false (here == there)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "flatcore"
    [
      ( "slow-vs-csr",
        [
          qtest ~count:60 "incident" fam_gen prop_incident;
          qtest ~count:60 "multiplicity family" fam_gen prop_multiplicity;
          qtest ~count:40 "sub" fam_gen prop_sub;
          qtest ~count:60 "incident order = CSR row" fam_gen
            prop_incident_order;
        ] );
      ("golden", [ Alcotest.test_case "replay corpus" `Quick test_golden_replay ]);
      ( "arena",
        [
          Alcotest.test_case "poisoning" `Quick test_arena_poisoning;
          Alcotest.test_case "pooled reuse" `Quick test_arena_reuse;
          Alcotest.test_case "per-domain local" `Quick
            test_arena_local_per_domain;
        ] );
    ]
