(* Tests for the migration core: Instance, Schedule, Lower_bounds,
   Even_optimal (Theorem 4.1), Hetero_coloring (Theorem 5.1), Saia,
   Exact, and the planner dispatch. *)

module Multigraph = Mgraph.Multigraph
module M = Migration
open Test_util

let even_instance_gen =
  instance_spec_gen ~menu:[ 2; 4; 6; 8 ] ~max_n:25 ~max_m:160 ()

let mixed_instance_gen =
  instance_spec_gen ~menu:[ 1; 2; 3; 4; 5 ] ~max_n:25 ~max_m:160 ()

let tiny_instance_gen =
  instance_spec_gen ~menu:[ 1; 2; 3 ] ~max_n:5 ~max_m:9 ()

(* ------------------------------------------------------------------ *)
(* Instance *)

let test_instance_validation () =
  let g = Multigraph.create ~n:2 () in
  ignore (Multigraph.add_edge g 0 1);
  Alcotest.check_raises "caps length"
    (Invalid_argument "Instance.create: one capacity per node required")
    (fun () -> ignore (M.Instance.create g ~caps:[| 1 |]));
  Alcotest.check_raises "zero cap"
    (Invalid_argument "Instance.create: capacities must be >= 1") (fun () ->
      ignore (M.Instance.create g ~caps:[| 1; 0 |]));
  let loop = Multigraph.create ~n:1 () in
  ignore (Multigraph.add_edge loop 0 0);
  Alcotest.check_raises "self loop"
    (Invalid_argument "Instance.create: self-loop (item already at target)")
    (fun () -> ignore (M.Instance.create loop ~caps:[| 1 |]))

let test_instance_accessors () =
  let g = Mgraph.Graph_gen.triangle_stack 3 in
  let inst = M.Instance.create g ~caps:[| 2; 4; 6 |] in
  Alcotest.(check int) "disks" 3 (M.Instance.n_disks inst);
  Alcotest.(check int) "items" 9 (M.Instance.n_items inst);
  Alcotest.(check int) "cap" 4 (M.Instance.cap inst 1);
  Alcotest.(check bool) "even" true (M.Instance.all_caps_even inst);
  (* degree 6, cap 2 -> ratio 3 *)
  Alcotest.(check int) "degree ratio" 3 (M.Instance.degree_ratio inst 0);
  let inst2 = M.Instance.uniform g ~cap:3 in
  Alcotest.(check bool) "odd not even" false (M.Instance.all_caps_even inst2)

let instance_roundtrip =
  qtest "instance: to_string/of_string round trip" mixed_instance_gen
    (fun spec ->
      let inst = instance_of_spec spec in
      let inst' = M.Instance.of_string (M.Instance.to_string inst) in
      M.Instance.n_disks inst' = M.Instance.n_disks inst
      && M.Instance.n_items inst' = M.Instance.n_items inst
      && M.Instance.caps inst' = M.Instance.caps inst
      && List.for_all
           (fun e ->
             Multigraph.endpoints (M.Instance.graph inst) e.Multigraph.id
             = Multigraph.endpoints (M.Instance.graph inst') e.Multigraph.id)
           (Multigraph.edges (M.Instance.graph inst)))

(* ------------------------------------------------------------------ *)
(* Schedule *)

let test_schedule_validate () =
  let g = Mgraph.Graph_gen.path 3 in
  (* edges: 0=(0,1), 1=(1,2); caps 1 everywhere *)
  let inst = M.Instance.uniform g ~cap:1 in
  let ok = M.Schedule.of_rounds [| [ 0 ]; [ 1 ] |] in
  Alcotest.(check bool) "valid" true (M.Schedule.validate inst ok = Ok ());
  let conflict = M.Schedule.of_rounds [| [ 0; 1 ] |] in
  Alcotest.(check bool) "conflict caught" true
    (M.Schedule.validate inst conflict <> Ok ());
  let missing = M.Schedule.of_rounds [| [ 0 ] |] in
  Alcotest.(check bool) "missing caught" true
    (M.Schedule.validate inst missing <> Ok ());
  let dup = M.Schedule.of_rounds [| [ 0 ]; [ 0; 1 ] |] in
  Alcotest.(check bool) "duplicate caught" true
    (M.Schedule.validate inst dup <> Ok ());
  let unknown = M.Schedule.of_rounds [| [ 0 ]; [ 1 ]; [ 7 ] |] in
  Alcotest.(check bool) "unknown caught" true
    (M.Schedule.validate inst unknown <> Ok ())

let test_schedule_cap2_parallel () =
  let g = Mgraph.Graph_gen.path 3 in
  let inst = M.Instance.uniform g ~cap:2 in
  let s = M.Schedule.of_rounds [| [ 0; 1 ] |] in
  Alcotest.(check bool) "one round fits with c=2" true
    (M.Schedule.validate inst s = Ok ());
  Alcotest.(check (array int)) "max parallelism" [| 2 |]
    (M.Schedule.max_parallelism inst s)

let test_schedule_of_coloring () =
  let g = Mgraph.Graph_gen.path 3 in
  let t = Coloring.Edge_coloring.create g ~cap:(fun _ -> 1) ~colors:3 in
  Coloring.Edge_coloring.assign t 0 0;
  Coloring.Edge_coloring.assign t 1 2;
  let s = M.Schedule.of_coloring t in
  Alcotest.(check int) "empty classes dropped" 2 (M.Schedule.n_rounds s);
  Alcotest.(check int) "items" 2 (M.Schedule.n_items s)

let test_schedule_incomplete_coloring () =
  let g = Mgraph.Graph_gen.path 3 in
  let t = Coloring.Edge_coloring.create g ~cap:(fun _ -> 1) ~colors:3 in
  Alcotest.check_raises "incomplete"
    (Invalid_argument "Schedule.of_coloring: coloring incomplete") (fun () ->
      ignore (M.Schedule.of_coloring t))

(* ------------------------------------------------------------------ *)
(* Lower bounds *)

let test_lb1_hand () =
  let g = Mgraph.Graph_gen.star ~leaves:7 in
  let caps = Array.make 8 1 in
  caps.(0) <- 3;
  let inst = M.Instance.create g ~caps in
  (* hub degree 7, cap 3 -> ceil = 3 *)
  Alcotest.(check int) "lb1 star" 3 (M.Lower_bounds.lb1 inst)

let test_gamma_triangle () =
  (* the paper's Figure 2 seen through Lemma 3.1: triangle with M
     parallel edges and c=1 gives Γ = 3M on S = {0,1,2} *)
  let m = 5 in
  let g = Mgraph.Graph_gen.triangle_stack m in
  let inst = M.Instance.uniform g ~cap:1 in
  Alcotest.(check int) "gamma term" (3 * m)
    (M.Lower_bounds.gamma_term inst [ 0; 1; 2 ]);
  (* lb1 alone is only 2M: Γ is strictly stronger here *)
  Alcotest.(check int) "lb1 weaker" (2 * m) (M.Lower_bounds.lb1 inst);
  Alcotest.(check int) "lb2 finds it" (3 * m)
    (M.Lower_bounds.lb2 ~rng:(rng_of_int 1) inst);
  (* with c=2 the same subset only certifies M *)
  let inst2 = M.Instance.uniform g ~cap:2 in
  Alcotest.(check int) "gamma with c=2" m
    (M.Lower_bounds.gamma_term inst2 [ 0; 1; 2 ])

let test_gamma_guards () =
  let g = Mgraph.Graph_gen.path 2 in
  let inst = M.Instance.uniform g ~cap:1 in
  Alcotest.check_raises "duplicate node"
    (Invalid_argument "Lower_bounds.gamma_term: duplicate node") (fun () ->
      ignore (M.Lower_bounds.gamma_term inst [ 0; 0 ]))

let lb_sound =
  qtest "lower bounds: lb <= exact OPT on tiny instances" ~count:60
    tiny_instance_gen
    (fun spec ->
      let inst = instance_of_spec spec in
      match M.Exact.opt_rounds inst with
      | None -> true (* budget blown; nothing to check *)
      | Some opt ->
          M.Lower_bounds.lower_bound ~rng:(rng_of_int 1) inst <= opt)

let lb2_at_least_whole_graph =
  qtest "lower bounds: lb2 >= whole-graph term" mixed_instance_gen
    (fun spec ->
      let inst = instance_of_spec spec in
      let whole = M.Lower_bounds.gamma_term inst
          (List.init (M.Instance.n_disks inst) Fun.id) in
      M.Lower_bounds.lb2 ~rng:(rng_of_int 2) inst >= whole)

(* ------------------------------------------------------------------ *)
(* Even_optimal: Theorem 4.1 *)

let even_optimal_theorem =
  qtest "even caps: schedule is valid and achieves LB1 exactly (Thm 4.1)"
    ~count:150 even_instance_gen
    (fun spec ->
      let inst = instance_of_spec spec in
      let s = M.Even_optimal.schedule inst in
      M.Schedule.validate inst s = Ok ()
      && M.Schedule.n_rounds s = M.Lower_bounds.lb1 inst)

let test_even_optimal_empty () =
  let g = Multigraph.create ~n:4 () in
  let inst = M.Instance.uniform g ~cap:2 in
  Alcotest.(check int) "zero rounds" 0
    (M.Schedule.n_rounds (M.Even_optimal.schedule inst))

let test_even_optimal_odd_rejected () =
  let g = Mgraph.Graph_gen.path 2 in
  let inst = M.Instance.uniform g ~cap:1 in
  Alcotest.check_raises "odd caps"
    (Invalid_argument
       "Even_optimal.schedule: all transfer constraints must be even")
    (fun () -> ignore (M.Even_optimal.schedule inst))

let test_even_optimal_fig2 () =
  (* Figure 2 with c=2: M rounds *)
  let m = 6 in
  let g = Mgraph.Graph_gen.triangle_stack m in
  let inst = M.Instance.uniform g ~cap:2 in
  let s = M.Even_optimal.schedule inst in
  check_valid_schedule inst s "fig2";
  Alcotest.(check int) "M rounds" m (M.Schedule.n_rounds s)

let test_even_optimal_disconnected () =
  let g = Multigraph.create ~n:6 () in
  ignore (Multigraph.add_edge g 0 1);
  ignore (Multigraph.add_edge g 0 1);
  ignore (Multigraph.add_edge g 3 4);
  ignore (Multigraph.add_edge g 4 5);
  let inst = M.Instance.create g ~caps:[| 2; 2; 2; 2; 2; 4 |] in
  let s = M.Even_optimal.schedule inst in
  check_valid_schedule inst s "disconnected";
  Alcotest.(check int) "lb1 rounds" (M.Lower_bounds.lb1 inst)
    (M.Schedule.n_rounds s)

let even_heterogeneous_caps =
  qtest "even caps: heterogeneity handled (caps 2 vs 8)" ~count:60
    (instance_spec_gen ~menu:[ 2; 8 ] ~max_n:20 ~max_m:120 ())
    (fun spec ->
      let inst = instance_of_spec spec in
      let s = M.Even_optimal.schedule inst in
      M.Schedule.validate inst s = Ok ()
      && M.Schedule.n_rounds s = M.Lower_bounds.lb1 inst)

(* ------------------------------------------------------------------ *)
(* Hetero_coloring: the general algorithm *)

let hetero_valid =
  qtest "general: schedule valid, rounds >= lb" ~count:120 mixed_instance_gen
    (fun spec ->
      let inst = instance_of_spec spec in
      let rng = rng_of_int spec.cap_seed in
      let s, stats = M.Hetero_coloring.schedule_stats ~rng inst in
      let r = M.Schedule.n_rounds s in
      M.Schedule.validate inst s = Ok ()
      && (M.Instance.n_items inst = 0 || r >= stats.M.Hetero_coloring.lb))

let hetero_beats_saia_bound =
  qtest "general: rounds <= Saia's 1.5 guarantee" ~count:100
    mixed_instance_gen
    (fun spec ->
      let inst = instance_of_spec spec in
      if M.Instance.n_items inst = 0 then true
      else begin
        let rng = rng_of_int spec.cap_seed in
        let s = M.Hetero_coloring.schedule ~rng inst in
        M.Schedule.n_rounds s <= M.Saia.round_bound inst + 1
      end)

let hetero_near_optimal_small =
  qtest "general: within OPT+1 on tiny instances" ~count:50 tiny_instance_gen
    (fun spec ->
      let inst = instance_of_spec spec in
      match M.Exact.opt_rounds inst with
      | None -> true
      | Some opt ->
          let rng = rng_of_int spec.cap_seed in
          let s = M.Hetero_coloring.schedule ~rng inst in
          M.Schedule.n_rounds s <= opt + 1)

let test_hetero_homogeneous_c1 () =
  (* with all c=1 this is classic multigraph edge coloring; the
     triangle-stack needs 3M rounds and the algorithm must find it *)
  let m = 4 in
  let g = Mgraph.Graph_gen.triangle_stack m in
  let inst = M.Instance.uniform g ~cap:1 in
  let s = M.Hetero_coloring.schedule ~rng:(rng_of_int 11) inst in
  check_valid_schedule inst s "c1 triangle";
  Alcotest.(check int) "3M rounds (Γ-tight)" (3 * m) (M.Schedule.n_rounds s)

let test_hetero_empty () =
  let g = Multigraph.create ~n:3 () in
  let inst = M.Instance.uniform g ~cap:1 in
  let s = M.Hetero_coloring.schedule inst in
  Alcotest.(check int) "zero rounds" 0 (M.Schedule.n_rounds s)

let hetero_deterministic =
  qtest "general: deterministic for a fixed seed" ~count:30
    mixed_instance_gen
    (fun spec ->
      let inst = instance_of_spec spec in
      let run () =
        M.Schedule.rounds
          (M.Hetero_coloring.schedule ~rng:(rng_of_int 99) inst)
      in
      run () = run ())

(* ------------------------------------------------------------------ *)
(* Saia baseline *)

let saia_valid_and_bounded =
  qtest "saia: valid and within the 1.5 bound" ~count:100 mixed_instance_gen
    (fun spec ->
      let inst = instance_of_spec spec in
      if M.Instance.n_items inst = 0 then true
      else begin
        let rng = rng_of_int spec.gspec.seed in
        let s = M.Saia.schedule ~rng inst in
        M.Schedule.validate inst s = Ok ()
        && M.Schedule.n_rounds s <= M.Saia.round_bound inst
      end)

let test_split_graph_properties () =
  let g = Mgraph.Graph_gen.triangle_stack 4 in
  let caps = [| 2; 3; 4 |] in
  let off = M.Split_graph.offsets caps in
  Alcotest.(check (array int)) "offsets" [| 0; 2; 5; 9 |] off;
  let sg = M.Split_graph.split g ~caps in
  Alcotest.(check int) "copies" 9 (Multigraph.n_nodes sg);
  Alcotest.(check int) "edges preserved" 12 (Multigraph.n_edges sg);
  (* node 0: degree 8, 2 copies -> each copy degree 4 *)
  Alcotest.(check int) "copy 0 degree" 4 (Multigraph.degree sg 0);
  Alcotest.(check int) "copy 1 degree" 4 (Multigraph.degree sg 1);
  Alcotest.(check int) "bound" 4 (M.Split_graph.split_degree_bound g ~caps)

(* ------------------------------------------------------------------ *)
(* Exact *)

let test_exact_triangle () =
  let g = Mgraph.Graph_gen.triangle_stack 1 in
  let inst = M.Instance.uniform g ~cap:1 in
  Alcotest.(check (option int)) "triangle c=1 needs 3" (Some 3)
    (M.Exact.opt_rounds inst);
  let inst2 = M.Instance.uniform g ~cap:2 in
  (* with c = 2, all three edges fit in a single round *)
  Alcotest.(check (option int)) "triangle c=2 needs 1" (Some 1)
    (M.Exact.opt_rounds inst2)

let test_exact_star () =
  let g = Mgraph.Graph_gen.star ~leaves:5 in
  let caps = Array.make 6 1 in
  caps.(0) <- 2;
  let inst = M.Instance.create g ~caps in
  (* hub degree 5, cap 2: ceil(5/2) = 3 and that's achievable *)
  Alcotest.(check (option int)) "star" (Some 3) (M.Exact.opt_rounds inst)

let test_exact_budget_exhaustion () =
  (* a dense instance with a 1-node budget must give up, not hang *)
  let g = Mgraph.Graph_gen.gnm (rng_of_int 7) ~n:8 ~m:40 in
  let inst = M.Instance.uniform g ~cap:1 in
  match M.Exact.solve ~node_budget:1 inst with
  | M.Exact.Gave_up -> ()
  | M.Exact.Optimal _ -> Alcotest.fail "expected Gave_up under a 1-node budget"

let test_instance_of_string_errors () =
  let bad input =
    try
      ignore (M.Instance.of_string input);
      Alcotest.failf "expected failure for %S" input
    with Failure _ | Invalid_argument _ -> ()
  in
  bad "";
  bad "2";
  bad "2 1";
  bad "2 1\n1 0";
  bad "2 1\n1 1\n0";
  bad "2 1\n1 1\n0 0" (* self loop *);
  bad "2 1\n0 1\n0 1" (* zero capacity *)

let exact_matches_even_optimal =
  qtest "exact: agrees with Theorem 4.1 on tiny even instances" ~count:40
    (instance_spec_gen ~menu:[ 2; 4 ] ~max_n:5 ~max_m:8 ())
    (fun spec ->
      let inst = instance_of_spec spec in
      match M.Exact.opt_rounds inst with
      | None -> true
      | Some opt ->
          opt
          = M.Schedule.n_rounds (M.Even_optimal.schedule inst))

let exact_schedule_valid =
  qtest "exact: produced schedule is valid" ~count:40 tiny_instance_gen
    (fun spec ->
      let inst = instance_of_spec spec in
      match M.Exact.solve inst with
      | M.Exact.Gave_up -> true
      | M.Exact.Optimal s -> M.Schedule.validate inst s = Ok ())

(* ------------------------------------------------------------------ *)
(* Planner dispatch *)

let planner_all_algorithms_valid =
  qtest "planner: every algorithm yields a valid schedule" ~count:40
    (instance_spec_gen ~menu:[ 2; 4 ] ~max_n:15 ~max_m:80 ())
    (fun spec ->
      let inst = instance_of_spec spec in
      List.for_all
        (fun alg ->
          let rng = rng_of_int 5 in
          let s = M.plan ~rng alg inst in
          M.Schedule.validate inst s = Ok ())
        M.all_algorithms)

let test_planner_auto_even () =
  let g = Mgraph.Graph_gen.triangle_stack 3 in
  let inst = M.Instance.uniform g ~cap:2 in
  let s = M.plan Migration.Auto inst in
  Alcotest.(check int) "auto = optimal for even" (M.Lower_bounds.lb1 inst)
    (M.Schedule.n_rounds s)

let test_algorithm_strings () =
  List.iter
    (fun alg ->
      match M.algorithm_of_string (M.algorithm_to_string alg) with
      | Some alg' when alg' = alg -> ()
      | _ -> Alcotest.failf "round trip failed for %s" (M.algorithm_to_string alg))
    M.all_algorithms;
  Alcotest.(check bool) "unknown" true (M.algorithm_of_string "nope" = None)

let even_konig_matches_flows =
  qtest "even caps: Konig decomposition is also optimal" ~count:60
    even_instance_gen
    (fun spec ->
      let inst = instance_of_spec spec in
      let s = M.Even_optimal.schedule ~method_:`Konig inst in
      M.Schedule.validate inst s = Ok ()
      && M.Schedule.n_rounds s = M.Lower_bounds.lb1 inst)

(* ------------------------------------------------------------------ *)
(* Validator fuzzing: every corruption of a valid schedule is caught *)

let validator_catches_mutations =
  qtest "schedule validator: random corruptions always detected" ~count:80
    QCheck2.Gen.(
      let* spec = instance_spec_gen ~menu:[ 1; 2; 3 ] ~max_n:10 ~max_m:30 () in
      let* kind = int_bound 3 in
      let* pick = int_bound 1_000_000 in
      return (spec, kind, pick))
    (fun (spec, kind, pick) ->
      let inst = instance_of_spec spec in
      let m = M.Instance.n_items inst in
      if m = 0 then true
      else begin
        let sched = M.Hetero_coloring.schedule ~rng:(rng_of_int pick) inst in
        let rounds = M.Schedule.rounds sched in
        let k = Array.length rounds in
        let corrupted =
          match kind with
          | 0 ->
              (* drop one edge *)
              let r = pick mod k in
              let edges = rounds.(r) in
              if edges = [] then None
              else begin
                rounds.(r) <- List.tl edges;
                Some (M.Schedule.of_rounds rounds)
              end
          | 1 ->
              (* schedule one edge twice *)
              let r = pick mod k in
              let e = pick mod m in
              rounds.(r) <- e :: rounds.(r);
              Some (M.Schedule.of_rounds rounds)
          | 2 ->
              (* unknown edge id *)
              let r = pick mod k in
              rounds.(r) <- (m + 5) :: rounds.(r);
              Some (M.Schedule.of_rounds rounds)
          | _ ->
              (* collapse everything into a single round: infeasible
                 whenever the lower bound needs >= 2 rounds *)
              if M.Lower_bounds.lb1 inst < 2 then None
              else
                Some
                  (M.Schedule.of_rounds
                     [| Array.to_list rounds |> List.concat |])
        in
        match corrupted with
        | None -> true (* mutation not applicable here *)
        | Some bad -> M.Schedule.validate inst bad <> Ok ()
      end)

(* ------------------------------------------------------------------ *)
(* Orbits: the paper's Section V-B structures and lemma checks *)

let partial_coloring spec fraction =
  let inst = instance_of_spec spec in
  let g = M.Instance.graph inst in
  let q = max 1 (M.Lower_bounds.lb1 inst + 1) in
  let t =
    Coloring.Edge_coloring.create g ~cap:(M.Instance.cap inst) ~colors:q
  in
  let rng = rng_of_int spec.cap_seed in
  Multigraph.iter_edges g (fun { Multigraph.id; _ } ->
      if Random.State.float rng 1.0 < fraction then
        match Coloring.Edge_coloring.common_missing t id with
        | Some c -> Coloring.Edge_coloring.assign t id c
        | None -> ());
  (inst, t)

let test_orbit_balancing_detection () =
  (* node 1 has cap 3 and no colored edges: strongly missing color 0 *)
  let g = Mgraph.Graph_gen.path 3 in
  let caps = [| 1; 3; 1 |] in
  let inst = M.Instance.create g ~caps in
  let t =
    Coloring.Edge_coloring.create (M.Instance.graph inst)
      ~cap:(M.Instance.cap inst) ~colors:2
  in
  match M.Orbits.orbits t with
  | [ orbit ] -> (
      Alcotest.(check int) "component spans the path" 3
        (List.length orbit.M.Orbits.nodes);
      match M.Orbits.classify t orbit with
      | M.Orbits.Balancing { node; _ } ->
          Alcotest.(check int) "the cap-3 node" 1 node
      | _ -> Alcotest.fail "expected a balancing orbit")
  | orbits -> Alcotest.failf "expected one orbit, got %d" (List.length orbits)

let test_orbit_color_orbit_detection () =
  (* caps 1 everywhere: every untouched node lightly misses color 0 *)
  let g = Mgraph.Graph_gen.path 3 in
  let inst = M.Instance.uniform g ~cap:1 in
  let t =
    Coloring.Edge_coloring.create (M.Instance.graph inst)
      ~cap:(M.Instance.cap inst) ~colors:1
  in
  match M.Orbits.orbits t with
  | [ orbit ] -> (
      match M.Orbits.classify t orbit with
      | M.Orbits.Color_orbit { color; _ } ->
          Alcotest.(check int) "shared missing color" 0 color
      | M.Orbits.Balancing _ -> Alcotest.fail "caps are 1: nothing strong"
      | M.Orbits.Tight -> Alcotest.fail "two nodes share the missing color")
  | _ -> Alcotest.fail "expected one orbit"

let test_orbit_bad_edges () =
  let g = Multigraph.create ~n:2 () in
  let e0 = Multigraph.add_edge g 0 1 in
  let e1 = Multigraph.add_edge g 0 1 in
  let inst = M.Instance.create g ~caps:[| 2; 2 |] in
  let t =
    Coloring.Edge_coloring.create (M.Instance.graph inst)
      ~cap:(M.Instance.cap inst) ~colors:2
  in
  Alcotest.(check (list int)) "both bad" [ e0; e1 ] (M.Orbits.bad_edges t);
  Coloring.Edge_coloring.assign t e0 0;
  Alcotest.(check (list int)) "none once one is colored" []
    (M.Orbits.bad_edges t)

let orbit_lemmas_hold =
  qtest "orbits: Lemmas 5.1/5.2 — non-tight orbits always yield progress"
    ~count:120
    (instance_spec_gen ~menu:[ 1; 2; 3; 4 ] ~max_n:14 ~max_m:60 ())
    (fun spec ->
      let _, t = partial_coloring spec 0.6 in
      let before = Coloring.Edge_coloring.n_uncolored t in
      if before = 0 then true
      else begin
        let rng = rng_of_int spec.gspec.seed in
        List.for_all
          (fun orbit ->
            match M.Orbits.classify t orbit with
            | M.Orbits.Tight -> true
            | M.Orbits.Balancing _ | M.Orbits.Color_orbit _ -> (
                match M.Orbits.make_progress ~rng t orbit with
                | Some _ ->
                    Coloring.Edge_coloring.validate t = Ok ()
                    && Coloring.Edge_coloring.n_uncolored t < before
                | None -> false))
          (M.Orbits.orbits t)
        |> fun ok ->
        (* at most one orbit was consumed above; re-validate the rest *)
        ok && Coloring.Edge_coloring.validate t = Ok ()
      end)

let test_edge_orbit_seed_and_grow () =
  (* two parallel uncolored edges plus an alternating path to follow *)
  let g = Multigraph.create ~n:4 () in
  let _e0 = Multigraph.add_edge g 0 1 in
  let _e1 = Multigraph.add_edge g 0 1 in
  let e2 = Multigraph.add_edge g 1 2 in
  let e3 = Multigraph.add_edge g 2 3 in
  let inst = M.Instance.uniform g ~cap:1 in
  let t =
    Coloring.Edge_coloring.create (M.Instance.graph inst)
      ~cap:(M.Instance.cap inst) ~colors:3
  in
  Coloring.Edge_coloring.assign t e2 0;
  Coloring.Edge_coloring.assign t e3 1;
  let orbit = M.Orbits.seed_orbit t 0 in
  Alcotest.(check (list int)) "seed vertices" [ 0; 1 ]
    orbit.M.Orbits.vertices;
  (match M.Orbits.grow t orbit with
  | M.Orbits.Grew o ->
      Alcotest.(check bool) "reached new vertices" true
        (List.length o.M.Orbits.vertices > 2);
      Alcotest.(check bool) "consumed colors" true
        (o.M.Orbits.used_colors <> [])
  | M.Orbits.Delta_witness _ -> Alcotest.fail "palette 3 has free colors"
  | M.Orbits.Gamma_witness -> Alcotest.fail "growth was available")

let orbit_engine_valid =
  qtest "orbit engine: faithful Phase 1 produces valid colorings" ~count:50
    (instance_spec_gen ~menu:[ 1; 2; 3 ] ~max_n:12 ~max_m:60 ())
    (fun spec ->
      let inst = instance_of_spec spec in
      let rng = rng_of_int spec.cap_seed in
      let t, stats = M.Orbits.color_via_orbits ~rng inst in
      Coloring.Edge_coloring.is_complete t
      && Coloring.Edge_coloring.validate t = Ok ()
      && stats.M.Orbits.palette
         >= (if M.Instance.n_items inst = 0 then 1 else M.Lower_bounds.lb1 inst))

let orbit_engine_close_to_kempe =
  qtest "orbit engine: palette within 1.5x+2 of the Kempe engine" ~count:30
    (instance_spec_gen ~menu:[ 1; 2; 3 ] ~max_n:10 ~max_m:50 ())
    (fun spec ->
      let inst = instance_of_spec spec in
      if M.Instance.n_items inst = 0 then true
      else begin
        let rng = rng_of_int spec.cap_seed in
        let _, ostats = M.Orbits.color_via_orbits ~rng inst in
        let _, hstats = M.Hetero_coloring.schedule_stats ~rng inst in
        ostats.M.Orbits.palette
        <= (3 * hstats.M.Hetero_coloring.palette / 2) + 2
      end)

let of_string_never_crashes =
  qtest "instance: of_string on junk fails cleanly, never crashes"
    ~count:200
    QCheck2.Gen.(string_size ~gen:(char_range '\000' 'z') (int_bound 60))
    (fun junk ->
      match M.Instance.of_string junk with
      | _ -> true
      | exception (Failure _ | Invalid_argument _) -> true)

let test_diagnostics () =
  let g = Mgraph.Graph_gen.triangle_stack 4 in
  let inst = M.Instance.create g ~caps:[| 1; 2; 2 |] in
  let r = M.Diagnostics.analyze ~rng:(rng_of_int 1) inst in
  Alcotest.(check int) "disks" 3 r.M.Diagnostics.disks;
  Alcotest.(check int) "items" 12 r.M.Diagnostics.items;
  Alcotest.(check int) "multiplicity" 4 r.M.Diagnostics.max_multiplicity;
  Alcotest.(check bool) "odd caps noted" false r.M.Diagnostics.all_caps_even;
  Alcotest.(check (list (pair int int))) "histogram" [ (1, 1); (2, 2) ]
    r.M.Diagnostics.cap_histogram;
  (* degree 8 at the c=1 node -> LB1 = 8; gamma = ceil(12/2) = 6 *)
  Alcotest.(check int) "lb1" 8 r.M.Diagnostics.lb1;
  Alcotest.(check bool) "degree binds" true
    (r.M.Diagnostics.binding_bound = `Degree);
  let rendered = Format.asprintf "%a" M.Diagnostics.pp r in
  Alcotest.(check bool) "renders" true (String.length rendered > 50)

let () =
  Alcotest.run "migration"
    [
      ( "instance",
        [
          Alcotest.test_case "validation" `Quick test_instance_validation;
          Alcotest.test_case "accessors" `Quick test_instance_accessors;
          Alcotest.test_case "of_string errors" `Quick
            test_instance_of_string_errors;
          of_string_never_crashes;
          instance_roundtrip;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "validate" `Quick test_schedule_validate;
          validator_catches_mutations;
          Alcotest.test_case "cap2 parallel" `Quick test_schedule_cap2_parallel;
          Alcotest.test_case "of_coloring" `Quick test_schedule_of_coloring;
          Alcotest.test_case "incomplete rejected" `Quick
            test_schedule_incomplete_coloring;
        ] );
      ( "lower_bounds",
        [
          Alcotest.test_case "lb1 star" `Quick test_lb1_hand;
          Alcotest.test_case "gamma triangle (Lemma 3.1)" `Quick
            test_gamma_triangle;
          Alcotest.test_case "guards" `Quick test_gamma_guards;
          lb_sound;
          lb2_at_least_whole_graph;
        ] );
      ( "even_optimal",
        [
          even_optimal_theorem;
          Alcotest.test_case "empty" `Quick test_even_optimal_empty;
          Alcotest.test_case "odd rejected" `Quick
            test_even_optimal_odd_rejected;
          Alcotest.test_case "fig2 c=2" `Quick test_even_optimal_fig2;
          Alcotest.test_case "disconnected" `Quick
            test_even_optimal_disconnected;
          even_heterogeneous_caps;
          even_konig_matches_flows;
        ] );
      ( "hetero",
        [
          hetero_valid;
          hetero_beats_saia_bound;
          hetero_near_optimal_small;
          Alcotest.test_case "homogeneous c=1 triangle" `Quick
            test_hetero_homogeneous_c1;
          Alcotest.test_case "empty" `Quick test_hetero_empty;
          hetero_deterministic;
        ] );
      ( "saia",
        [
          saia_valid_and_bounded;
          Alcotest.test_case "split graph" `Quick test_split_graph_properties;
        ] );
      ( "exact",
        [
          Alcotest.test_case "triangle" `Quick test_exact_triangle;
          Alcotest.test_case "star" `Quick test_exact_star;
          Alcotest.test_case "budget exhaustion" `Quick
            test_exact_budget_exhaustion;
          exact_matches_even_optimal;
          exact_schedule_valid;
        ] );
      ( "orbits",
        [
          Alcotest.test_case "balancing detection" `Quick
            test_orbit_balancing_detection;
          Alcotest.test_case "color orbit detection" `Quick
            test_orbit_color_orbit_detection;
          Alcotest.test_case "bad edges" `Quick test_orbit_bad_edges;
          orbit_lemmas_hold;
          Alcotest.test_case "edge orbit growth" `Quick
            test_edge_orbit_seed_and_grow;
          orbit_engine_valid;
          orbit_engine_close_to_kempe;
        ] );
      ( "diagnostics",
        [ Alcotest.test_case "summary" `Quick test_diagnostics ] );
      ( "planner",
        [
          planner_all_algorithms_valid;
          Alcotest.test_case "auto even" `Quick test_planner_auto_even;
          Alcotest.test_case "algorithm strings" `Quick test_algorithm_strings;
        ] );
    ]
