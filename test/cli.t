CLI end-to-end: generate an instance, inspect bounds, plan, validate.

  $ alias migrate=../bin/migrate_cli.exe

  $ migrate generate --kind fig1 --caps 2,1,1,2,1 --seed 1 > fig1.txt
  $ cat fig1.txt
  5 9
  2 1 2 1 2
  0 1
  0 1
  1 2
  2 0
  2 3
  3 4
  3 4
  4 1
  0 3
  $ migrate bounds fig1.txt
  disks:       5
  items:       9
  LB1:         4
  LB2 (gamma): 3
  lower bound: 4
  $ migrate plan -q -a hetero fig1.txt
  algorithm:   hetero
  objective:   makespan
  rounds:      4
  lower bound: 4
  utilization: 0.56
  $ migrate compare fig1.txt
  5 disks, 9 items, lower bound 4
  
  algorithm    rounds    vs LB  utilization
  even-opt        n/a
  hetero            4    1.00x         0.56
  saia              4    1.00x         0.56
  greedy            4    1.00x         0.56
  
  pipeline auto: 4 rounds over 1 component(s)
    component 0: 5 disks, 9 items -> hetero (4 rounds)
  $ migrate plan -q --save sched.txt fig1.txt
  algorithm:   auto
  objective:   makespan
  rounds:      4
  lower bound: 4
  utilization: 0.56
  saved to sched.txt
  $ migrate check fig1.txt sched.txt
  valid: 4 rounds, 9 items
  $ migrate exact fig1.txt
  optimal rounds: 4
  schedule: 4 rounds
    round 0: 5 3 2
    round 1: 6 0
    round 2: 8 7
    round 3: 4 1
  
  $ migrate generate --disks 6 --items 12 --caps 2 --seed 7 > even.txt
  $ migrate plan -q -a even-opt even.txt
  algorithm:   even-opt
  objective:   makespan
  rounds:      4
  lower bound: 4
  utilization: 0.50

Pipeline per-component selection: an all-even pool and an odd-cap pool
with no transfers between them get different planners.

  $ cat > two_pools.txt <<EOF
  > 10 15
  > 2 2 2 2 2 3 1 3 1 3
  > 0 1
  > 0 1
  > 1 2
  > 2 3
  > 3 4
  > 4 0
  > 0 2
  > 1 3
  > 5 6
  > 6 7
  > 7 8
  > 8 9
  > 9 5
  > 5 7
  > 6 8
  > EOF
  $ migrate compare two_pools.txt
  10 disks, 15 items, lower bound 3
  
  algorithm    rounds    vs LB  utilization
  even-opt        n/a
  hetero            3    1.00x         0.48
  saia              3    1.00x         0.48
  greedy            3    1.00x         0.48
  
  pipeline auto: 3 rounds over 2 component(s)
    component 0: 5 disks, 8 items -> even-opt (2 rounds)
    component 1: 5 disks, 7 items -> hetero (3 rounds)

Structured metrics: timings vary run to run, so check the stable key
set rather than values.

  $ migrate plan -q --metrics-json two_pools.txt | tr ',{' '\n\n' \
  >   | grep -oE '"(phase_timings|flow.augmenting_paths|recolor.kempe_flips|pipeline.components|hetero.phase2_edges)"' | sort -u
  "flow.augmenting_paths"
  "hetero.phase2_edges"
  "phase_timings"
  "pipeline.components"
  "recolor.kempe_flips"
  $ migrate plan -q --metrics two_pools.txt | grep -cE "^pipeline\.(decompose|solve|merge) "
  3

Error handling:

  $ migrate plan -a nope fig1.txt 2>&1 | head -2
  migrate: option '-a': unknown algorithm "nope"
           (auto|even-opt|hetero|saia|greedy|orbits|sla-greedy)
  $ echo "bad" | migrate bounds - 2>&1; echo "exit: $?"
  error: not a valid instance: Instance.of_string: missing header
  exit: 2
  $ printf '99 98\n' >> sched.txt
  $ migrate check fig1.txt sched.txt 2>&1; echo "exit: $?"
  error: not a valid schedule: Schedule.of_string: trailing garbage after round 4: "99 98"
  exit: 2

Analysis:

  $ migrate generate --kind fig1 --caps 2,1,1,2,1 --seed 1 | migrate analyze -
  disks:            5 (1 components)
  items:            9 (max multiplicity 2)
  degrees:          n=5 mean=3.60±0.55 min=3.00 p50=4.00 p95=4.00 max=4.00
  degree ratios:    n=5 mean=2.80±1.10 min=2.00 p50=2.00 p95=4.00 max=4.00
  constraints:      c=1 x2, c=2 x3
  LB1 / Γ:          4 / 3 (degree bound binds)
  suggested:        hetero ((1+o(1))-approximation)

Traces and sweeps:

  $ migrate simulate rebalance --disks 6 --items 60 --trace | head -8
  rounds: 3   (one column = 1 round)
  disk   0 c=1 |   |
  disk   1 c=2 |..#|
  disk   2 c=3 |##+|
  disk   3 c=4 |.#.|
  disk   4 c=1 |   |
  disk   5 c=2 |###|
  wall time: 9.0

Differential fuzzing: seeded families, every applicable planner,
independent certification, deterministic report.

  $ migrate fuzz --families even,powerlaw --count 5 --seed 7
  fuzz: 2 families x 5 instances, size 12, seed 7
  
  family       solver        runs    ok  max-gap  gap histogram
  even         even-opt         5     5        0  0:5
  even         hetero           5     5        0  0:5
  even         saia             5     5        0  0:5
  even         greedy           5     5        0  0:5
  even         orbits           5     5        0  0:5
  even         auto             5     5        0  0:5
  even         sla-greedy       5     5        0  0:5
  even         forwarding       5     5        0  0:5
  powerlaw     hetero           5     5        0  0:5
  powerlaw     saia             5     5        0  0:5
  powerlaw     greedy           5     5        0  0:5
  powerlaw     orbits           5     5        0  0:5
  powerlaw     auto             5     5        0  0:5
  powerlaw     sla-greedy       5     5        0  0:5
  powerlaw     forwarding       5     5        0  0:5
  
  total: 10 instances, 75 solver runs, 0 failures

An unknown family name lists the valid ones:

  $ migrate fuzz --families nope --count 1 2>&1; echo "exit: $?"
  migrate: option '--families': invalid element in list ('nope'): unknown
           family "nope" (expected one of
           uniform|powerlaw|even|unit|parallel|bottleneck|multipool|huge|tenants)
  Usage: migrate fuzz [OPTION]…
  Try 'migrate fuzz --help' or 'migrate --help' for more information.
  exit: 124

Parallel solving: --jobs never changes the answer, only the wall
clock.  The two-pool instance has two components, so --jobs 2 solves
them on separate domains.

  $ migrate plan -q --jobs 2 two_pools.txt
  algorithm:   auto
  objective:   makespan
  rounds:      3
  lower bound: 3
  utilization: 0.48
  $ migrate plan -q --jobs 1 two_pools.txt > seq.out
  $ migrate plan -q --jobs 2 two_pools.txt | cmp - seq.out && echo same
  same

A violation found on a worker domain still fails the run: the exit
code is the certifier's verdict, not the domain's.

  $ migrate fuzz --families unit --count 1 --seed 5 --jobs 2 --inject-broken > fuzz_broken.out 2>&1; echo "exit: $?"
  exit: 1
  $ head -15 fuzz_broken.out
  fuzz: 1 families x 1 instances, size 12, seed 5
  
  family       solver        runs    ok  max-gap  gap histogram
  unit         hetero           1     1        0  0:1
  unit         saia             1     1        1  1:1
  unit         greedy           1     1        1  1:1
  unit         orbits           1     1        1  1:1
  unit         auto             1     1        0  0:1
  unit         sla-greedy       1     1        1  1:1
  unit         broken           1     0        0  0:1
  unit         forwarding       1     1        0  0:1
  
  total: 1 instances, 8 solver runs, 1 failures
  
  FAILURE family=unit seed=5000 size=12 solver=broken

A fuzz-family reproducer triple (family, seed, size) regenerates the
exact instance; the bottleneck family makes the subset bound bind.

  $ migrate generate --family bottleneck --seed 3 --size 8
  5 8
  1 1 1 4 8
  0 1
  0 1
  0 2
  0 2
  1 2
  1 2
  0 3
  1 4
  $ migrate generate --family bottleneck --seed 3 --size 8 | migrate analyze -
  disks:            5 (1 components)
  items:            8 (max multiplicity 2)
  degrees:          n=5 mean=3.20±2.05 min=1.00 p50=4.00 p95=5.00 max=5.00
  degree ratios:    n=5 mean=3.20±2.05 min=1.00 p50=4.00 p95=5.00 max=5.00
  constraints:      c=1 x3, c=4 x1, c=8 x1
  LB1 / Γ:          5 / 6 (Γ binds)
  suggested:        hetero ((1+o(1))-approximation)

Fault-tolerant execution: any fault option flips simulate into engine
mode — transient failures retry under backoff, a crashed disk
quarantines its pending items instead of aborting, and the full
execution log is re-certified from scratch.

  $ migrate simulate --fault-rate 0.05 --crash 1 --seed 1 --jobs 2
  scenario:  rebalance
  policy:    seeded(rate=0.05 crashes=1 slowdowns=0 seed=1)
  rounds:      10 (0 idle, 8 transfers lost to faults)
  completed:   85/100 items
  replans:     2 (retries 4)
  crashed:     3
  quarantined: 15 item(s)
    - item 16: disk 3 crashed
    - item 17: disk 3 crashed
    - item 26: disk 3 crashed
    - item 39: disk 3 crashed
    - item 60: disk 3 crashed
    - item 71: disk 3 crashed
    - item 79: disk 3 crashed
    - item 80: disk 3 crashed
    - item 83: disk 3 crashed
    - item 85: disk 3 crashed
    - item 87: disk 3 crashed
    - item 88: disk 3 crashed
    - item 89: disk 3 crashed
    - item 90: disk 3 crashed
    - item 94: disk 3 crashed
  execution certified: 10 rounds, 85 items completed

The outcome is byte-identical at every --jobs value:

  $ migrate simulate --fault-rate 0.05 --crash 1 --seed 1 --jobs 1 > sim_j1.out
  $ migrate simulate --fault-rate 0.05 --crash 1 --seed 1 --jobs 2 | cmp - sim_j1.out && echo same
  same

A doctored execution log fails certification, and the exit code says so:

  $ migrate simulate --fault-rate 0.02 --seed 3 --inject-tamper 2>&1; echo "exit: $?"
  scenario:  rebalance
  policy:    seeded(rate=0.02 crashes=0 slowdowns=0 seed=3)
  rounds:      11 (0 idle, 1 transfers lost to faults)
  completed:   106/106 items
  replans:     1 (retries 1)
  EXECUTION REJECTED: 11 rounds, 105 items completed
    - item 0 neither completed nor quarantined
  exit: 1

Fuzzing with --fault-rate drives every generated instance through the
engine and certifies every execution independently:

  $ migrate fuzz --fault-rate 0.1 --families even,bottleneck --count 3 --seed 7 --size 8
  engine fuzz: 2 families x 3 instances, size 8, fault rate 0.1, seed 7
  
  family        runs completed quarantined replans retries rounds  idle
  even             3        72           0       4       8     15     0
  bottleneck       3        34           0       4       5     21     1
  
  total: 6 executions, all certified: yes, 0 failures



Distributed execution: --distributed N forks a coordinator and N real
worker processes, drives the certified plan round by round over
socketpairs, journals every barrier durably in --state-dir, and
requires the reconstructed flight log byte-identical to the
in-process engine's:

  $ migrate simulate rebalance --disks 6 --items 40 --distributed 3 --state-dir sd --seed 5
  scenario:  rebalance
  mode:      distributed, 3 workers
  rounds:    2 committed, 0 skipped (already durable)
  workers:   3, respawns: 0
  execution certified: 2 rounds, 8 items completed
  flight log identical to in-process engine: yes

kill -9 of a worker mid-round is absorbed within the run — the
coordinator reaps the corpse, respawns the index, and re-issues the
shard:

  $ migrate simulate rebalance --disks 6 --items 40 --distributed 3 --state-dir sd_w --seed 5 --kill-at worker1:mid-round:0
  scenario:  rebalance
  mode:      distributed, 3 workers
  rounds:    2 committed, 0 skipped (already durable)
  workers:   3, respawns: 1
  execution certified: 2 rounds, 8 items completed
  flight log identical to in-process engine: yes

kill -9 of the coordinator interrupts the run with the journal phase;
re-running the same command resumes from the journal, skips the
already-durable round, and still converges byte-identically:

  $ migrate simulate rebalance --disks 6 --items 40 --distributed 3 --state-dir sd_c --seed 5 --kill-at coord:post-commit:0
  scenario:  rebalance
  mode:      distributed, 3 workers
  interrupted: coordinator killed (SIGKILL)
  journal:   round 0 committed
  resume:    re-run the same command to continue
  [137]
  $ migrate simulate rebalance --disks 6 --items 40 --distributed 3 --state-dir sd_c --seed 5
  scenario:  rebalance
  mode:      distributed, 3 workers
  rounds:    2 committed, 1 skipped (already durable), resumed from journal
  workers:   3, respawns: 0
  execution certified: 2 rounds, 8 items completed
  flight log identical to in-process engine: yes

The guards: distributed mode needs a state dir, at least one worker,
and executes fault-free; the journal flags only make sense with it:

  $ migrate simulate --distributed 2 2>&1; echo "exit: $?"
  error: --distributed requires --state-dir
  exit: 2
  $ migrate simulate --state-dir sd 2>&1; echo "exit: $?"
  error: --state-dir/--kill-at only make sense with --distributed
  exit: 2
  $ migrate simulate --distributed 0 --state-dir sd 2>&1; echo "exit: $?"
  error: --distributed needs at least 1 worker
  exit: 2
  $ migrate simulate --distributed 2 --state-dir sd --fault-rate 0.1 2>&1; echo "exit: $?"
  error: --distributed executes fault-free; fault options are not supported
  exit: 2
  $ migrate simulate --distributed 2 --state-dir sdx --kill-at bogus 2>&1; echo "exit: $?"
  error: bad --kill-at "bogus" (want coord:pre-commit|post-commit:K or worker<i>:pre-round|mid-round|post-report:K)
  exit: 2

Fuzzing with --distributed soaks every generated instance through the
coordinator/worker runner under random scripted kills, resumes until
convergence, and requires every flight log certifier-clean and
byte-identical to the engine's:

  $ migrate fuzz --distributed --families even,uniform --count 2 --seed 11 --size 8
  distributed fuzz: 2 families x 2 instances, size 8, seed 11
  
  family        runs rounds transfers kills resumes
  even             3      6        48     2       1
  uniform          3     16        48     2       1
  
  total: 4 soaks, all converged & identical: yes, 0 failures





The streaming service: `serve` batches a trigger trace into epochs,
plans each outstanding diff warm-incrementally, executes it under the
fault policy, and certifies the concatenated flight log independently.
A two-epoch stream — a retarget batch, then a demand shift that
arrives 20 rounds later:

  $ cat > stream.trace <<EOF
  > # two-epoch stream: a retarget batch, then a demand shift
  > init disks=4 items=24 caps=2,2,2,2 zipf=1.1 seed=7
  > at 0 retarget 0:3 1:2 2:1
  > at 20 shift 0.25
  > EOF
  $ migrate serve --trace stream.trace --epoch-rounds 16 --seed 7
  epochs:      2 (22 rounds total)
  transfers:   5 (0 quarantined, 0 repairs)
  replans:     0 (retries 0)
  requests:    2 completed, 0 abandoned, 0 rejected
  latency:     p50=1 p99=2 rounds
  request 0: completed@1 (absorbed@0)
  request 1: completed@22 (absorbed@20)
  service certified: 2 epochs, 22 rounds, 5 transfers

The report is byte-identical at any --jobs:

  $ migrate serve --trace stream.trace --epoch-rounds 16 --seed 7 > serve_j1.out
  $ migrate serve --trace stream.trace --epoch-rounds 16 --seed 7 --jobs 4 | cmp - serve_j1.out && echo same
  same

--inject-tamper forges the flight log after the run; the independent
certifier must reject it and name the exact violation:

  $ migrate serve --trace stream.trace --epoch-rounds 16 --seed 7 --inject-tamper 2>&1; echo "exit: $?"
  epochs:      2 (22 rounds total)
  transfers:   5 (0 quarantined, 0 repairs)
  replans:     0 (retries 0)
  requests:    2 completed, 0 abandoned, 0 rejected
  latency:     p50=1 p99=2 rounds
  request 0: completed@1 (absorbed@0)
  request 1: completed@22 (absorbed@20)
  SERVICE REJECTED: 2 epochs, 22 rounds, 6 transfers
    - epoch 0: item 1 completed twice (rounds 0 and 0)
  exit: 1

Transfer faults are retried under the engine's per-epoch policy; the
flight log still certifies:

  $ migrate serve --trace stream.trace --epoch-rounds 16 --fault-rate 0.3 --seed 9
  epochs:      2 (20 rounds total)
  transfers:   2 (0 quarantined, 0 repairs)
  replans:     1 (retries 1)
  requests:    2 completed, 0 abandoned, 0 rejected
  latency:     p50=0 p99=2 rounds
  request 0: completed@2 (absorbed@0)
  request 1: completed@20 (absorbed@20)
  service certified: 2 epochs, 20 rounds, 2 transfers

A disk that dies mid-stream abandons the requests whose outstanding
moves target it and re-replicates its resident items onto the ring
successor:

  $ cat > failing.trace <<EOF
  > init disks=4 items=32 caps=1,1,1,1 zipf=1.1 seed=3
  > at 0 retarget 0:3 1:3 2:3 3:3 4:3 5:3
  > at 2 fail 3
  > EOF
  $ migrate serve --trace failing.trace --epoch-rounds 2 --seed 4
  epochs:      2 (2 rounds total)
  transfers:   2 (0 quarantined, 13 repairs)
  replans:     0 (retries 0)
  requests:    1 completed, 1 abandoned, 0 rejected
  latency:     p50=0 p99=0 rounds
  request 0: abandoned (absorbed@0)
  request 1: completed@2 (absorbed@2)
  service certified: 2 epochs, 2 rounds, 2 transfers

Bad arguments and unreadable traces exit 2:

  $ migrate serve --trace stream.trace --epoch-rounds 0 2>&1; echo "exit: $?"
  error: --epoch-rounds must be >= 1
  exit: 2
  $ migrate serve --trace missing.trace 2>&1; echo "exit: $?"
  error: missing.trace: No such file or directory
  exit: 2

SLA objectives: the "tenants" family emits tagged instances (a
`groups` block after the caps), and `plan --objective group-ct`
reorders the schedule for weighted group completion, prints the
per-group table in priority order, and certifies the claim
independently:

  $ migrate generate --family tenants --seed 4 --size 12 > sla.inst
  $ head -3 sla.inst
  12 36
  5 5 5 2 1 5 1 3 4 4 1 1
  groups 7
  $ migrate plan sla.inst --objective group-ct
  algorithm:   auto
  objective:   group-ct
  rounds:      6
  lower bound: 6
  utilization: 0.32
  group 5:     w=7 C=1
  group 1:     w=6 C=5
  group 2:     w=4 C=6
  group 4:     w=4 C=3
  group 6:     w=3 C=6
  group 0:     w=2 C=6
  group 3:     w=2 C=5
  weighted sum: 113
  completion:  p50=5 p99=6 rounds
  sla certified: 7 groups, weighted sum 113
  schedule: 6 rounds
    round 0: 26
    round 1: 2 3 5 6 7 9 10 12 17 19 20 25 29 31
    round 2: 0 4 13 14 15 21 32 33
    round 3: 1 18 22 23 24 27
    round 4: 8 11 16
    round 5: 28 30 34 35
  

The sla.* metrics surface in --metrics-json:

  $ migrate plan -q sla.inst --objective group-ct --metrics-json | tr ',{' '\n\n' \
  >   | grep -oE '"sla\.(groups|reorders|weighted_sum|p50_completion|p99_completion)"' | sort -u
  "sla.groups"
  "sla.p50_completion"
  "sla.p99_completion"
  "sla.reorders"
  "sla.weighted_sum"

Tenant-tagged trace requests get a per-tenant latency breakdown in the
serve report:

  $ cat > tenants.trace <<EOF
  > init disks=4 items=24 caps=2,2,2,2 zipf=1.1 seed=7
  > at 0 tenant=1 retarget 0:3 1:2
  > at 4 tenant=2 retarget 2:1 3:0
  > at 20 shift 0.25
  > EOF
  $ migrate serve --trace tenants.trace --epoch-rounds 16 --seed 7
  epochs:      3 (22 rounds total)
  transfers:   7 (0 quarantined, 0 repairs)
  replans:     0 (retries 0)
  requests:    3 completed, 0 abandoned, 0 rejected
  latency:     p50=1 p99=2 rounds
  tenant 0:    1 completed, p50=2 p99=2 rounds
  tenant 1:    1 completed, p50=1 p99=1 rounds
  tenant 2:    1 completed, p50=1 p99=1 rounds
  request 0: completed@1 (absorbed@0)
  request 1: completed@5 (absorbed@4)
  request 2: completed@22 (absorbed@20)
  service certified: 3 epochs, 22 rounds, 7 transfers

Lab sweeps produce deterministic CSV:

  $ ../bin/migrate_lab.exe --out . speedup >/dev/null
  $ cat speedup.csv
  M,c1_time,c2_time
  1,3.0,2.0
  2,6.0,4.0
  4,12.0,8.0
  8,24.0,16.0
  16,48.0,32.0
  32,96.0,64.0
