(* Tests for workload generation: Demand, Layout, Scenarios. *)

module W = Workloads
module S = Storsim
module M = Migration
open Test_util

(* ------------------------------------------------------------------ *)
(* Demand *)

let test_zipf_weights () =
  let w = W.Demand.zipf_weights ~n:100 ~s:1.0 in
  let total = Array.fold_left ( +. ) 0.0 w in
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 total;
  Alcotest.(check bool) "decreasing" true
    (let ok = ref true in
     for i = 0 to 98 do
       if w.(i) < w.(i + 1) then ok := false
     done;
     !ok);
  Alcotest.(check bool) "skewed" true (w.(0) > 10.0 *. w.(99));
  (* s = 0 is uniform *)
  let u = W.Demand.zipf_weights ~n:10 ~s:0.0 in
  Alcotest.(check (float 1e-9)) "uniform" 0.1 u.(7)

let test_demands_randomized () =
  let d1 = W.Demand.demands (rng_of_int 1) ~n:50 ~s:0.8 in
  let d2 = W.Demand.demands (rng_of_int 2) ~n:50 ~s:0.8 in
  Alcotest.(check bool) "different orders" true (d1 <> d2);
  let sorted a =
    let c = Array.copy a in
    Array.sort compare c;
    c
  in
  Alcotest.(check bool) "same multiset" true (sorted d1 = sorted d2)

let shift_preserves_multiset =
  qtest "demand: shift preserves the demand multiset" ~count:50
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 1 80))
    (fun (seed, n) ->
      let rng = rng_of_int seed in
      let d = W.Demand.demands rng ~n ~s:0.9 in
      let d' = W.Demand.shift rng ~fraction:0.4 d in
      let sorted a =
        let c = Array.copy a in
        Array.sort compare c;
        c
      in
      sorted d = sorted d')

(* ------------------------------------------------------------------ *)
(* Layout *)

let test_balance_places_everything () =
  let demands = W.Demand.zipf_weights ~n:30 ~s:0.9 in
  let weights = [| 1.0; 2.0; 1.0 |] in
  let p = W.Layout.balance ~demands ~weights in
  Alcotest.(check int) "all placed" 30 (S.Placement.n_items p);
  Array.iter
    (fun d -> Alcotest.(check bool) "valid disk" true (d >= 0 && d < 3))
    (S.Placement.to_array p)

let test_balance_respects_weights () =
  (* uniform demands, weights 1:3 -> the heavy disk carries ~3x *)
  let demands = Array.make 400 1.0 in
  let weights = [| 1.0; 3.0 |] in
  let p = W.Layout.balance ~demands ~weights in
  let carried = W.Layout.disk_demand ~demands p ~n_disks:2 in
  Alcotest.(check bool) "ratio near 3" true
    (carried.(1) /. carried.(0) > 2.5 && carried.(1) /. carried.(0) < 3.5);
  Alcotest.(check bool) "imbalance near 1" true
    (W.Layout.imbalance ~demands ~weights p < 1.1)

let balance_beats_round_robin =
  qtest "layout: greedy balance is no worse than round-robin" ~count:40
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 10 120))
    (fun (seed, n) ->
      let rng = rng_of_int seed in
      let demands = W.Demand.demands rng ~n ~s:1.1 in
      let weights = [| 1.0; 1.0; 1.0; 1.0 |] in
      let greedy = W.Layout.balance ~demands ~weights in
      let rr = S.Placement.create ~n_items:n (fun i -> i mod 4) in
      W.Layout.imbalance ~demands ~weights greedy
      <= W.Layout.imbalance ~demands ~weights rr +. 1e-9)

let test_sizes_positive_and_heavy_tailed () =
  let s = W.Demand.sizes (rng_of_int 9) ~n:2000 ~alpha:1.1 in
  Alcotest.(check bool) "all positive" true (Array.for_all (fun x -> x > 0.0) s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  (* heavy tail: the max dwarfs the median *)
  Alcotest.(check bool) "heavy tail" true
    (sorted.(1999) > 10.0 *. sorted.(1000));
  Alcotest.check_raises "bad alpha"
    (Invalid_argument "Demand.sizes: alpha must be positive") (fun () ->
      ignore (W.Demand.sizes (rng_of_int 1) ~n:3 ~alpha:0.0))

let incremental_rebalance_properties =
  qtest "layout: incremental rebalance moves less and stays bounded"
    ~count:40
    QCheck2.Gen.(pair (int_bound 100_000) (int_range 40 200))
    (fun (seed, n) ->
      let rng = rng_of_int seed in
      let demands = W.Demand.demands rng ~n ~s:1.0 in
      let weights = [| 1.0; 1.0; 2.0; 2.0 |] in
      let before = W.Layout.balance ~demands ~weights in
      (* shift demand, then rebalance incrementally *)
      let demands' = W.Demand.shift rng ~fraction:0.5 demands in
      let incr =
        W.Layout.rebalance_incremental ~demands:demands' ~weights
          ~current:before ~tolerance:0.15
      in
      (* every item moved came off a disk that really was overloaded *)
      let total = Array.fold_left ( +. ) 0.0 demands' in
      let total_w = Array.fold_left ( +. ) 0.0 weights in
      let carried_before =
        W.Layout.disk_demand ~demands:demands' before
          ~n_disks:(Array.length weights)
      in
      let over d =
        carried_before.(d)
        > 1.15 *. (total *. weights.(d) /. total_w) -. 1e-9
      in
      List.for_all (fun (_, src, _) -> over src) (S.Placement.diff before incr)
      && S.Placement.n_items incr = n)

let test_incremental_noop_when_balanced () =
  let demands = Array.make 100 1.0 in
  let weights = [| 1.0; 1.0 |] in
  let current = S.Placement.create ~n_items:100 (fun i -> i mod 2) in
  let p =
    W.Layout.rebalance_incremental ~demands ~weights ~current ~tolerance:0.05
  in
  Alcotest.(check bool) "unchanged" true (S.Placement.equal p current)

let test_incremental_fixes_hotspot () =
  (* all demand on disk 0; incremental must shed most of it *)
  let demands = Array.make 60 1.0 in
  let weights = [| 1.0; 1.0; 1.0 |] in
  let current = S.Placement.create ~n_items:60 (fun _ -> 0) in
  let p =
    W.Layout.rebalance_incremental ~demands ~weights ~current ~tolerance:0.1
  in
  Alcotest.(check bool) "imbalance bounded" true
    (W.Layout.imbalance ~demands ~weights p <= 1.1 +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Scenarios *)


let run_scenario (sc : W.Scenarios.t) =
  let rng = rng_of_int 77 in
  S.Simulator.run sc.cluster ~target:sc.target ~plan:(M.plan ~rng M.Auto)

let test_rebalance_scenario () =
  let sc = W.Scenarios.rebalance (rng_of_int 3) ~n_disks:10 ~n_items:300 () in
  let report = run_scenario sc in
  Alcotest.(check bool) "some movement" true (report.S.Simulator.items_moved > 0);
  Alcotest.(check bool) "reached" true
    (S.Cluster.reached sc.cluster ~target:sc.target)

let test_addition_scenario () =
  let sc =
    W.Scenarios.disk_addition (rng_of_int 4) ~n_old:6 ~n_new:3 ~n_items:270
      ~old_cap:2 ~new_cap:4 ()
  in
  (* before: nothing on the new disks *)
  let before_load = S.Cluster.load sc.cluster in
  Alcotest.(check int) "new disk empty" 0 before_load.(7);
  let _ = run_scenario sc in
  let after_load =
    S.Placement.load sc.target ~n_disks:(S.Cluster.n_disks sc.cluster)
  in
  (* fair share by capacity: total cap = 6*2+3*4 = 24; new disk = 4/24 *)
  let expected = 270 * 4 / 24 in
  Alcotest.(check bool) "new disk near fair share" true
    (abs (after_load.(7) - expected) <= 1);
  Alcotest.(check bool) "reached" true
    (S.Cluster.reached sc.cluster ~target:sc.target)

let test_removal_scenario () =
  let sc =
    W.Scenarios.disk_removal (rng_of_int 5) ~n_disks:8 ~n_remove:2 ~n_items:160 ()
  in
  let _ = run_scenario sc in
  let after_load = S.Placement.load sc.target ~n_disks:8 in
  Alcotest.(check int) "evacuated 6" 0 after_load.(6);
  Alcotest.(check int) "evacuated 7" 0 after_load.(7);
  Alcotest.(check int) "all items survive" 160
    (Array.fold_left ( + ) 0 after_load)

let test_failure_scenario () =
  let sc =
    W.Scenarios.failure_recovery (rng_of_int 6) ~n_disks:9 ~failed:4
      ~n_items:180 ()
  in
  (* the failed disk holds nothing, before or after *)
  let before_load = S.Cluster.load sc.cluster in
  Alcotest.(check int) "failed disk empty before" 0 before_load.(4);
  let _ = run_scenario sc in
  let after_load = S.Placement.load sc.target ~n_disks:9 in
  Alcotest.(check int) "failed disk empty after" 0 after_load.(4);
  Alcotest.(check int) "all items survive" 180
    (Array.fold_left ( + ) 0 after_load)

let scenarios_all_plannable =
  qtest "scenarios: every scenario migrates to target under every planner"
    ~count:20
    QCheck2.Gen.(int_bound 100_000)
    (fun seed ->
      let mk =
        [
          (fun rng -> W.Scenarios.rebalance rng ~n_disks:6 ~n_items:80 ());
          (fun rng ->
            W.Scenarios.disk_addition rng ~n_old:4 ~n_new:2 ~n_items:60 ());
          (fun rng ->
            W.Scenarios.disk_removal rng ~n_disks:6 ~n_remove:1 ~n_items:60 ());
          (fun rng ->
            W.Scenarios.failure_recovery rng ~n_disks:6 ~failed:1 ~n_items:60 ());
        ]
      in
      List.for_all
        (fun make ->
          List.for_all
            (fun alg ->
              let sc = make (rng_of_int seed) in
              let rng = rng_of_int (seed + 1) in
              let report =
                S.Simulator.run sc.W.Scenarios.cluster
                  ~target:sc.W.Scenarios.target ~plan:(M.plan ~rng alg)
              in
              ignore report;
              S.Cluster.reached sc.W.Scenarios.cluster
                ~target:sc.W.Scenarios.target)
            [ M.Hetero; M.Saia_split; M.Greedy ])
        mk)

let test_striped_layout () =
  let p = W.Layout.striped ~n_objects:4 ~blocks_per_object:3 ~n_disks:5 () in
  (* object 0: blocks on disks 0,1,2; object 1 staggered: 1,2,3 *)
  Alcotest.(check int) "o0 b0" 0 (S.Placement.disk_of p 0);
  Alcotest.(check int) "o0 b2" 2 (S.Placement.disk_of p 2);
  Alcotest.(check int) "o1 b0" 1 (S.Placement.disk_of p 3);
  Alcotest.(check int) "o3 b2" 0 (S.Placement.disk_of p 11);
  Alcotest.check_raises "guards" (Invalid_argument "Layout.striped")
    (fun () ->
      ignore (W.Layout.striped ~n_objects:0 ~blocks_per_object:1 ~n_disks:1 ()))

let test_restripe_modes () =
  let moves mode =
    let sc =
      W.Scenarios.restripe (rng_of_int 8) ~n_old:8 ~n_new:4 ~n_objects:50
        ~blocks_per_object:8 ~mode ()
    in
    let diff =
      S.Placement.diff
        (S.Cluster.placement sc.W.Scenarios.cluster)
        sc.W.Scenarios.target
    in
    List.length diff
  in
  let full = moves `Full and minimal = moves `Minimal in
  (* full restriping reshuffles most blocks; minimal only fills the
     new disks' fair share (400 * 4/12 = ~133) *)
  Alcotest.(check bool) "full moves most" true (full > 200);
  Alcotest.(check bool) "minimal moves the fair share" true
    (minimal >= 130 && minimal <= 140);
  (* both plans execute *)
  let sc =
    W.Scenarios.restripe (rng_of_int 8) ~n_old:8 ~n_new:4 ~n_objects:50
      ~blocks_per_object:8 ~mode:`Minimal ()
  in
  ignore (run_scenario sc);
  Alcotest.(check bool) "reached" true
    (S.Cluster.reached sc.W.Scenarios.cluster ~target:sc.W.Scenarios.target)

let test_scenario_guards () =
  let rng = rng_of_int 1 in
  Alcotest.check_raises "removal of everything"
    (Invalid_argument "Scenarios.disk_removal") (fun () ->
      ignore (W.Scenarios.disk_removal rng ~n_disks:4 ~n_remove:4 ~n_items:10 ()));
  Alcotest.check_raises "bad failed disk"
    (Invalid_argument "Scenarios.failure_recovery: bad disk") (fun () ->
      ignore
        (W.Scenarios.failure_recovery rng ~n_disks:5 ~failed:9 ~n_items:10 ()))

let () =
  Alcotest.run "workloads"
    [
      ( "demand",
        [
          Alcotest.test_case "zipf weights" `Quick test_zipf_weights;
          Alcotest.test_case "randomized ranks" `Quick test_demands_randomized;
          shift_preserves_multiset;
        ] );
      ( "layout",
        [
          Alcotest.test_case "places everything" `Quick
            test_balance_places_everything;
          Alcotest.test_case "respects weights" `Quick
            test_balance_respects_weights;
          balance_beats_round_robin;
          Alcotest.test_case "sizes generator" `Quick
            test_sizes_positive_and_heavy_tailed;
          incremental_rebalance_properties;
          Alcotest.test_case "incremental noop" `Quick
            test_incremental_noop_when_balanced;
          Alcotest.test_case "incremental hotspot" `Quick
            test_incremental_fixes_hotspot;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "rebalance" `Quick test_rebalance_scenario;
          Alcotest.test_case "disk addition" `Quick test_addition_scenario;
          Alcotest.test_case "disk removal" `Quick test_removal_scenario;
          Alcotest.test_case "failure recovery" `Quick test_failure_scenario;
          scenarios_all_plannable;
          Alcotest.test_case "striped layout" `Quick test_striped_layout;
          Alcotest.test_case "restripe modes" `Quick test_restripe_modes;
          Alcotest.test_case "guards" `Quick test_scenario_guards;
        ] );
    ]
