(* Tests for the multigraph substrate: Vec, Multigraph, Traversal,
   Euler, Graph_gen, Graph_io. *)

module Multigraph = Mgraph.Multigraph
module Vec = Mgraph.Vec
open Test_util

(* ------------------------------------------------------------------ *)
(* Vec *)

let test_vec_basic () =
  let v = Vec.create ~dummy:0 () in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  Alcotest.(check int) "push idx 0" 0 (Vec.push v 10);
  Alcotest.(check int) "push idx 1" 1 (Vec.push v 20);
  Alcotest.(check int) "len" 2 (Vec.length v);
  Alcotest.(check int) "get" 20 (Vec.get v 1);
  Vec.set v 0 99;
  Alcotest.(check int) "set" 99 (Vec.get v 0);
  Alcotest.(check int) "peek" 20 (Vec.peek v);
  Alcotest.(check int) "pop" 20 (Vec.pop v);
  Alcotest.(check int) "len after pop" 1 (Vec.length v)

let test_vec_growth () =
  let v = Vec.create ~dummy:(-1) () in
  for i = 0 to 999 do
    ignore (Vec.push v i)
  done;
  Alcotest.(check int) "len" 1000 (Vec.length v);
  for i = 0 to 999 do
    Alcotest.(check int) "elem" i (Vec.get v i)
  done

let test_vec_bounds () =
  let v = Vec.make ~dummy:0 3 7 in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 3));
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty")
    (fun () -> ignore (Vec.pop (Vec.create ~dummy:0 ())))

let test_vec_iterators () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3; 4 ] in
  Alcotest.(check (list int)) "to_list" [ 1; 2; 3; 4 ] (Vec.to_list v);
  Alcotest.(check int) "fold" 10 (Vec.fold ( + ) 0 v);
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 3) v);
  Alcotest.(check bool) "not exists" false (Vec.exists (fun x -> x = 9) v);
  let sum = ref 0 in
  Vec.iteri (fun i x -> sum := !sum + (i * x)) v;
  Alcotest.(check int) "iteri" ((0 * 1) + (1 * 2) + (2 * 3) + (3 * 4)) !sum;
  let c = Vec.copy v in
  Vec.set c 0 42;
  Alcotest.(check int) "copy is independent" 1 (Vec.get v 0)

let vec_roundtrip =
  qtest "vec: of_list/to_list roundtrip"
    QCheck2.Gen.(list int)
    (fun l -> Vec.to_list (Vec.of_list ~dummy:0 l) = l)

(* ------------------------------------------------------------------ *)
(* Multigraph *)

let test_graph_basic () =
  let g = Multigraph.create ~n:3 () in
  let e0 = Multigraph.add_edge g 0 1 in
  let e1 = Multigraph.add_edge g 0 1 in
  let e2 = Multigraph.add_edge g 1 2 in
  Alcotest.(check int) "nodes" 3 (Multigraph.n_nodes g);
  Alcotest.(check int) "edges" 3 (Multigraph.n_edges g);
  Alcotest.(check int) "deg 0" 2 (Multigraph.degree g 0);
  Alcotest.(check int) "deg 1" 3 (Multigraph.degree g 1);
  Alcotest.(check int) "multiplicity" 2 (Multigraph.multiplicity g 0 1);
  Alcotest.(check int) "max mult" 2 (Multigraph.max_multiplicity g);
  Alcotest.(check int) "other" 1 (Multigraph.other_endpoint g e0 0);
  Alcotest.(check int) "other'" 0 (Multigraph.other_endpoint g e1 1);
  Alcotest.(check bool) "not simple" false (Multigraph.is_simple g);
  Alcotest.(check bool) "handshake" true (Multigraph.handshake_ok g);
  Alcotest.(check (pair int int)) "endpoints" (1, 2) (Multigraph.endpoints g e2)

let test_self_loop () =
  let g = Multigraph.create ~n:2 () in
  let e = Multigraph.add_edge g 0 0 in
  Alcotest.(check bool) "is self loop" true (Multigraph.is_self_loop g e);
  Alcotest.(check int) "self loop degree 2" 2 (Multigraph.degree g 0);
  Alcotest.(check int) "listed once" 1 (List.length (Multigraph.incident g 0));
  Alcotest.(check int) "other endpoint" 0 (Multigraph.other_endpoint g e 0);
  Alcotest.(check bool) "handshake with loop" true (Multigraph.handshake_ok g)

let test_add_node () =
  let g = Multigraph.create () in
  let a = Multigraph.add_node g in
  let b = Multigraph.add_node g in
  Alcotest.(check int) "ids" 0 a;
  Alcotest.(check int) "ids" 1 b;
  ignore (Multigraph.add_edge g a b);
  Alcotest.(check int) "deg" 1 (Multigraph.degree g a);
  (* force adjacency growth *)
  for _ = 1 to 100 do
    ignore (Multigraph.add_node g)
  done;
  Alcotest.(check int) "n" 102 (Multigraph.n_nodes g)

let test_sub () =
  let g = Multigraph.create ~n:4 () in
  let _e0 = Multigraph.add_edge g 0 1 in
  let e1 = Multigraph.add_edge g 1 2 in
  let _e2 = Multigraph.add_edge g 2 3 in
  let e3 = Multigraph.add_edge g 3 0 in
  let keep e = e = e1 || e = e3 in
  let h, mapping = Multigraph.sub g keep in
  Alcotest.(check int) "same node count" 4 (Multigraph.n_nodes h);
  Alcotest.(check int) "edge count" 2 (Multigraph.n_edges h);
  Alcotest.(check (array int)) "mapping" [| e1; e3 |] mapping;
  Alcotest.(check (pair int int)) "renumbered endpoints" (1, 2)
    (Multigraph.endpoints h 0)

let test_bad_args () =
  let g = Multigraph.create ~n:2 () in
  Alcotest.check_raises "bad endpoint"
    (Invalid_argument "Multigraph.add_edge") (fun () ->
      ignore (Multigraph.add_edge g 0 5));
  let e = Multigraph.add_edge g 0 1 in
  Alcotest.check_raises "not an endpoint"
    (Invalid_argument "Multigraph.other_endpoint: not an endpoint") (fun () ->
      ignore (Multigraph.other_endpoint g e 5))

let graph_handshake =
  qtest "multigraph: handshake lemma on random graphs"
    (graph_spec_gen ~max_n:40 ~max_m:200)
    (fun spec -> Multigraph.handshake_ok (graph_of_spec spec))

let graph_degree_sum =
  qtest "multigraph: degree = |incident| + self-loops"
    (graph_spec_gen ~max_n:30 ~max_m:150)
    (fun spec ->
      let g = graph_of_spec spec in
      let ok = ref true in
      for v = 0 to Multigraph.n_nodes g - 1 do
        let loops =
          List.length
            (List.filter (Multigraph.is_self_loop g) (Multigraph.incident g v))
        in
        if
          Multigraph.degree g v
          <> List.length (Multigraph.incident g v) + loops
        then ok := false
      done;
      !ok)

let graph_copy_independent =
  qtest "multigraph: copy is structurally equal and independent"
    (graph_spec_gen ~max_n:20 ~max_m:60)
    (fun spec ->
      let g = graph_of_spec spec in
      let h = Multigraph.copy g in
      ignore (Multigraph.add_edge h 0 1);
      Multigraph.n_edges h = Multigraph.n_edges g + 1)

(* ------------------------------------------------------------------ *)
(* Traversal *)

let test_bfs_path () =
  let g = Mgraph.Graph_gen.path 5 in
  let dist = Mgraph.Traversal.bfs g 0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 4 |] dist

let test_bfs_unreachable () =
  let g = Multigraph.create ~n:3 () in
  ignore (Multigraph.add_edge g 0 1);
  let dist = Mgraph.Traversal.bfs g 0 in
  Alcotest.(check int) "unreachable" (-1) dist.(2)

let test_components () =
  let g = Multigraph.create ~n:6 () in
  ignore (Multigraph.add_edge g 0 1);
  ignore (Multigraph.add_edge g 1 2);
  ignore (Multigraph.add_edge g 3 4);
  let comp, k = Mgraph.Traversal.components g in
  Alcotest.(check int) "three components" 3 k;
  Alcotest.(check bool) "same comp" true (comp.(0) = comp.(2));
  Alcotest.(check bool) "diff comp" true (comp.(0) <> comp.(3));
  Alcotest.(check bool) "isolated" true (comp.(5) <> comp.(0));
  Alcotest.(check bool) "connected?" false (Mgraph.Traversal.is_connected g);
  let members = Mgraph.Traversal.component_members g in
  let sizes = Array.map List.length members in
  Array.sort compare sizes;
  Alcotest.(check (array int)) "member sizes" [| 1; 2; 3 |] sizes

let test_dfs_order () =
  let g = Mgraph.Graph_gen.cycle 4 in
  let order = Mgraph.Traversal.dfs_order g 0 in
  Alcotest.(check int) "visits all" 4 (List.length order);
  Alcotest.(check int) "starts at src" 0 (List.hd order)

let components_partition =
  qtest "traversal: components partition the nodes"
    (graph_spec_gen ~max_n:40 ~max_m:120)
    (fun spec ->
      let g = graph_of_spec spec in
      let comp, k = Mgraph.Traversal.components g in
      Array.for_all (fun c -> c >= 0 && c < k) comp)

(* ------------------------------------------------------------------ *)
(* Euler *)

let circuit_covers g =
  let circuits = Mgraph.Euler.circuits g in
  let seen = Array.make (Multigraph.n_edges g) 0 in
  let ok = ref true in
  List.iter
    (fun circuit ->
      (* consecutive arcs chain, and the circuit closes *)
      (match circuit with
      | [] -> ()
      | first :: _ ->
          let rec chain = function
            | [ last ] -> if last.Mgraph.Euler.dst <> first.Mgraph.Euler.src then ok := false
            | a :: (b :: _ as rest) ->
                if a.Mgraph.Euler.dst <> b.Mgraph.Euler.src then ok := false;
                chain rest
            | [] -> ()
          in
          chain circuit);
      List.iter
        (fun arc -> seen.(arc.Mgraph.Euler.edge) <- seen.(arc.Mgraph.Euler.edge) + 1)
        circuit)
    circuits;
  !ok && Array.for_all (fun c -> c = 1) seen

let test_euler_cycle_graph () =
  let g = Mgraph.Graph_gen.cycle 6 in
  Alcotest.(check bool) "even degrees" true (Mgraph.Euler.all_degrees_even g);
  Alcotest.(check bool) "covers" true (circuit_covers g)

let test_euler_odd_rejected () =
  let g = Mgraph.Graph_gen.path 3 in
  Alcotest.check_raises "odd degree"
    (Invalid_argument "Euler: graph has a node of odd degree") (fun () ->
      ignore (Mgraph.Euler.circuits g))

let test_euler_with_self_loops () =
  let g = Multigraph.create ~n:2 () in
  ignore (Multigraph.add_edge g 0 0);
  ignore (Multigraph.add_edge g 0 1);
  ignore (Multigraph.add_edge g 0 1);
  ignore (Multigraph.add_edge g 1 1);
  Alcotest.(check bool) "covers with loops" true (circuit_covers g)

let test_euler_self_loops_only () =
  let g = Multigraph.create ~n:1 () in
  ignore (Multigraph.add_edge g 0 0);
  ignore (Multigraph.add_edge g 0 0);
  Alcotest.(check bool) "covers" true (circuit_covers g);
  let orient = Mgraph.Euler.orientation g in
  Alcotest.(check (array (pair int int))) "both loops oriented"
    [| (0, 0); (0, 0) |] orient

let euler_random =
  qtest "euler: circuits cover evenized random multigraphs"
    (graph_spec_gen ~max_n:30 ~max_m:150)
    (fun spec -> circuit_covers (evenize (graph_of_spec spec)))

let euler_orientation_balanced =
  qtest "euler: orientation splits degree in half"
    (graph_spec_gen ~max_n:30 ~max_m:150)
    (fun spec ->
      let g = evenize (graph_of_spec spec) in
      let orient = Mgraph.Euler.orientation g in
      let n = Multigraph.n_nodes g in
      let outd = Array.make n 0 and ind = Array.make n 0 in
      Array.iter
        (fun (s, d) ->
          if s >= 0 then begin
            outd.(s) <- outd.(s) + 1;
            ind.(d) <- ind.(d) + 1
          end)
        orient;
      let ok = ref true in
      for v = 0 to n - 1 do
        if outd.(v) <> Multigraph.degree g v / 2 then ok := false;
        if ind.(v) <> Multigraph.degree g v / 2 then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Generators *)

let test_gen_shapes () =
  let rng = rng_of_int 5 in
  let g = Mgraph.Graph_gen.gnm rng ~n:10 ~m:25 in
  Alcotest.(check int) "gnm m" 25 (Multigraph.n_edges g);
  Alcotest.(check bool) "gnm no self loops" true
    (Multigraph.fold_edges (fun e acc -> acc && e.Multigraph.u <> e.Multigraph.v) g true);
  let r = Mgraph.Graph_gen.regular rng ~n:8 ~deg:4 in
  Alcotest.(check bool) "regular degrees" true
    (List.for_all (fun v -> Multigraph.degree r v = 4) (List.init 8 Fun.id));
  let b = Mgraph.Graph_gen.bipartite rng ~n1:4 ~n2:6 ~m:30 in
  Alcotest.(check bool) "bipartite sides" true
    (Multigraph.fold_edges
       (fun e acc -> acc && e.Multigraph.u < 4 && e.Multigraph.v >= 4)
       b true);
  let t = Mgraph.Graph_gen.triangle_stack 7 in
  Alcotest.(check int) "triangle edges" 21 (Multigraph.n_edges t);
  Alcotest.(check int) "triangle mult" 7 (Multigraph.multiplicity t 0 1);
  let k = Mgraph.Graph_gen.complete 6 in
  Alcotest.(check int) "complete edges" 15 (Multigraph.n_edges k);
  Alcotest.(check bool) "complete simple" true (Multigraph.is_simple k);
  let s = Mgraph.Graph_gen.star ~leaves:9 in
  Alcotest.(check int) "star hub degree" 9 (Multigraph.degree s 0);
  let p = Mgraph.Graph_gen.power_law rng ~n:20 ~m:100 in
  Alcotest.(check int) "power law m" 100 (Multigraph.n_edges p);
  let c = Mgraph.Graph_gen.clustered rng ~k:3 ~size:5 ~intra:10 ~inter:4 in
  Alcotest.(check int) "clustered n" 15 (Multigraph.n_nodes c);
  Alcotest.(check int) "clustered m" 34 (Multigraph.n_edges c);
  let f = Mgraph.Graph_gen.example_fig1 () in
  Alcotest.(check int) "fig1 nodes" 5 (Multigraph.n_nodes f);
  Alcotest.(check bool) "fig1 has parallel edges" true
    (Multigraph.max_multiplicity f >= 2)

let test_gen_determinism () =
  let g1 = Mgraph.Graph_gen.gnm (rng_of_int 9) ~n:12 ~m:40 in
  let g2 = Mgraph.Graph_gen.gnm (rng_of_int 9) ~n:12 ~m:40 in
  Alcotest.(check string) "same stream, same graph"
    (Mgraph.Graph_io.to_edge_list g1)
    (Mgraph.Graph_io.to_edge_list g2)

let test_gen_errors () =
  let rng = rng_of_int 1 in
  Alcotest.check_raises "regular parity"
    (Invalid_argument "Graph_gen.regular: n * deg must be even") (fun () ->
      ignore (Mgraph.Graph_gen.regular rng ~n:3 ~deg:3));
  Alcotest.check_raises "cycle too small"
    (Invalid_argument "Graph_gen.cycle: need n >= 3") (fun () ->
      ignore (Mgraph.Graph_gen.cycle 2))

(* ------------------------------------------------------------------ *)
(* IO *)

let io_roundtrip =
  qtest "io: edge-list round trip"
    (graph_spec_gen ~max_n:25 ~max_m:100)
    (fun spec ->
      let g = graph_of_spec spec in
      let h = Mgraph.Graph_io.of_edge_list (Mgraph.Graph_io.to_edge_list g) in
      Multigraph.n_nodes h = Multigraph.n_nodes g
      && Multigraph.n_edges h = Multigraph.n_edges g
      && List.for_all
           (fun e ->
             Multigraph.endpoints g e.Multigraph.id
             = Multigraph.endpoints h e.Multigraph.id)
           (Multigraph.edges g))

let test_io_errors () =
  let bad input msg =
    try
      ignore (Mgraph.Graph_io.of_edge_list input);
      Alcotest.failf "expected failure for %s" msg
    with Failure _ -> ()
  in
  bad "" "empty";
  bad "2" "missing m";
  bad "2 1\n0" "dangling";
  bad "2 1\n0 1\n0 1" "extra edges";
  bad "2 2\n0 1" "missing edges";
  bad "2 1\n0 7" "out of range";
  bad "2 1\nx y" "not ints"

let test_io_dot () =
  let g = Mgraph.Graph_gen.triangle_stack 1 in
  let dot = Mgraph.Graph_io.to_dot ~name:"tri" g in
  Alcotest.(check bool) "has header" true
    (String.length dot > 10 && String.sub dot 0 9 = "graph tri")

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_basic () =
  let h = Mgraph.Heap.create ~leq:( <= ) () in
  Alcotest.(check bool) "empty" true (Mgraph.Heap.is_empty h);
  List.iter (Mgraph.Heap.push h) [ 5; 1; 4; 1; 9; 2 ];
  Alcotest.(check int) "length" 6 (Mgraph.Heap.length h);
  Alcotest.(check int) "peek" 1 (Mgraph.Heap.peek h);
  Alcotest.(check (list int)) "drain sorted" [ 1; 1; 2; 4; 5; 9 ]
    (Mgraph.Heap.drain h);
  Alcotest.check_raises "pop empty" (Invalid_argument "Heap.pop: empty")
    (fun () -> ignore (Mgraph.Heap.pop h))

let test_heap_max_order () =
  let h = Mgraph.Heap.of_list ~leq:( >= ) [ 3; 7; 2 ] in
  Alcotest.(check (list int)) "max-heap drain" [ 7; 3; 2 ] (Mgraph.Heap.drain h)

let heap_sorts =
  qtest "heap: drain equals List.sort"
    QCheck2.Gen.(list (int_bound 10_000))
    (fun xs ->
      Mgraph.Heap.drain (Mgraph.Heap.of_list ~leq:( <= ) xs)
      = List.sort compare xs)

let heap_interleaved =
  qtest "heap: interleaved push/pop maintains order" ~count:60
    QCheck2.Gen.(list (pair bool (int_bound 1000)))
    (fun ops ->
      let h = Mgraph.Heap.create ~leq:( <= ) () in
      let model = ref [] in
      List.for_all
        (fun (is_pop, x) ->
          if is_pop then
            match (Mgraph.Heap.pop_opt h, !model) with
            | None, [] -> true
            | Some y, m :: rest ->
                model := rest;
                y = m
            | _ -> false
          else begin
            Mgraph.Heap.push h x;
            model := List.sort compare (x :: !model);
            true
          end)
        ops)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_hand () =
  let xs = [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Mgraph.Stats.mean xs);
  Alcotest.(check (float 1e-6)) "stddev" 2.13809 (Mgraph.Stats.stddev xs);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Mgraph.Stats.minimum xs);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Mgraph.Stats.maximum xs);
  Alcotest.(check (float 1e-9)) "median" 4.0 (Mgraph.Stats.median xs);
  Alcotest.(check (float 1e-9)) "p100" 9.0 (Mgraph.Stats.percentile 100.0 xs);
  Alcotest.(check (float 1e-9)) "singleton stddev" 0.0
    (Mgraph.Stats.stddev [ 3.0 ]);
  Alcotest.check_raises "empty" (Invalid_argument "Stats: empty sample")
    (fun () -> ignore (Mgraph.Stats.mean []))

let stats_summary_consistent =
  qtest "stats: summary fields are ordered and within range"
    QCheck2.Gen.(list_size (int_range 1 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Mgraph.Stats.summarize xs in
      s.Mgraph.Stats.min <= s.Mgraph.Stats.p50
      && s.Mgraph.Stats.p50 <= s.Mgraph.Stats.p95
      && s.Mgraph.Stats.p95 <= s.Mgraph.Stats.max
      && s.Mgraph.Stats.min <= s.Mgraph.Stats.mean +. 1e-9
      && s.Mgraph.Stats.mean <= s.Mgraph.Stats.max +. 1e-9
      && s.Mgraph.Stats.n = List.length xs)

let () =
  Alcotest.run "mgraph"
    [
      ( "vec",
        [
          Alcotest.test_case "basic ops" `Quick test_vec_basic;
          Alcotest.test_case "growth" `Quick test_vec_growth;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "iterators" `Quick test_vec_iterators;
          vec_roundtrip;
        ] );
      ( "multigraph",
        [
          Alcotest.test_case "basic" `Quick test_graph_basic;
          Alcotest.test_case "self loops" `Quick test_self_loop;
          Alcotest.test_case "add_node" `Quick test_add_node;
          Alcotest.test_case "sub" `Quick test_sub;
          Alcotest.test_case "bad args" `Quick test_bad_args;
          graph_handshake;
          graph_degree_sum;
          graph_copy_independent;
        ] );
      ( "traversal",
        [
          Alcotest.test_case "bfs path" `Quick test_bfs_path;
          Alcotest.test_case "bfs unreachable" `Quick test_bfs_unreachable;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "dfs order" `Quick test_dfs_order;
          components_partition;
        ] );
      ( "euler",
        [
          Alcotest.test_case "cycle graph" `Quick test_euler_cycle_graph;
          Alcotest.test_case "odd rejected" `Quick test_euler_odd_rejected;
          Alcotest.test_case "self loops" `Quick test_euler_with_self_loops;
          Alcotest.test_case "only self loops" `Quick
            test_euler_self_loops_only;
          euler_random;
          euler_orientation_balanced;
        ] );
      ( "generators",
        [
          Alcotest.test_case "shapes" `Quick test_gen_shapes;
          Alcotest.test_case "determinism" `Quick test_gen_determinism;
          Alcotest.test_case "errors" `Quick test_gen_errors;
        ] );
      ( "io",
        [
          io_roundtrip;
          Alcotest.test_case "errors" `Quick test_io_errors;
          Alcotest.test_case "dot" `Quick test_io_dot;
        ] );
      ( "heap",
        [
          Alcotest.test_case "basic" `Quick test_heap_basic;
          Alcotest.test_case "max order" `Quick test_heap_max_order;
          heap_sorts;
          heap_interleaved;
        ] );
      ( "stats",
        [
          Alcotest.test_case "hand computed" `Quick test_stats_hand;
          stats_summary_consistent;
        ] );
    ]
