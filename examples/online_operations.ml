(* Operations view: live request streams, execution traces, and the
   cost of round barriers.

   Shows the simulator features around the core scheduler: a request
   stream handled online with replanning, the per-disk Gantt trace of
   the resulting migration, and the same work executed without round
   barriers.

   Run with:  dune exec examples/online_operations.exe *)

let () =
  let rng = Random.State.make [| 404 |] in
  let n_disks = 10 and n_items = 300 in
  let caps = Array.init n_disks (fun i -> 1 + (i mod 3)) in
  let disks =
    Array.mapi (fun id cap -> Storsim.Disk.make ~id ~cap ()) caps
  in
  let before =
    Storsim.Placement.create ~n_items (fun _ -> Random.State.int rng n_disks)
  in

  (* one-shot migration, traced *)
  let target =
    Storsim.Placement.create ~n_items (fun _ -> Random.State.int rng n_disks)
  in
  let cluster = Storsim.Cluster.create ~disks ~placement:before in
  let job = Storsim.Cluster.plan_reconfiguration cluster ~target in
  let sched = Migration.plan ~rng Migration.Hetero job.Storsim.Cluster.instance in
  Format.printf "=== migration trace (%d moves) ===@."
    (Migration.Instance.n_items job.Storsim.Cluster.instance);
  print_string
    (Storsim.Trace.render (Storsim.Trace.capture ~disks job sched));

  (* the same transfers without round barriers *)
  let barrier = Storsim.Bandwidth.schedule_duration ~disks job sched in
  let async =
    Storsim.Async_exec.run ~disks job (Storsim.Async_exec.By_schedule sched)
  in
  Format.printf
    "@.barriers: %.1f   work-conserving: %.1f   (%.0f%% saved)@.@." barrier
    async.Storsim.Async_exec.makespan
    (100.0 *. (barrier -. async.Storsim.Async_exec.makespan) /. barrier);

  (* a request stream handled online *)
  let cluster2 = Storsim.Cluster.create ~disks ~placement:before in
  let requests =
    List.init 6 (fun k ->
        {
          Storsim.Online.at_round = k * 3;
          moves =
            List.init 20 (fun _ ->
                (Random.State.int rng n_items, Random.State.int rng n_disks))
            |> List.fold_left
                 (fun acc (i, d) ->
                   (i, d) :: List.filter (fun (j, _) -> j <> i) acc)
                 [];
        })
  in
  let report =
    Storsim.Online.run cluster2 ~requests ~plan:(Migration.plan ~rng Migration.Auto)
  in
  Format.printf "=== online request stream ===@.";
  Format.printf "6 requests, ~20 moves each, arriving every 3 rounds@.";
  Format.printf "total rounds %d, replans %d, transfers %d@."
    report.Storsim.Online.rounds report.Storsim.Online.replans
    report.Storsim.Online.items_moved;
  Array.iteri
    (fun i l -> Format.printf "  request %d completed %d rounds after arrival@." i l)
    report.Storsim.Online.latencies
