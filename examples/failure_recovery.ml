(* Failure recovery with a mid-migration capability change.

   A disk dies; its data is re-created from replicas and spread across
   the survivors.  Halfway through the recovery one of the source disks
   gets hit by a client-traffic spike and its available transfer
   constraint drops from 4 to 1 — the situation the paper's
   introduction gives for why c_v differs across disks and over time.
   The remaining transfers are replanned under the new constraints.

   Run with:  dune exec examples/failure_recovery.exe *)

let () =
  let rng = Random.State.make [| 13 |] in
  let sc =
    Workloads.Scenarios.failure_recovery rng ~n_disks:12 ~failed:5
      ~n_items:600 ~caps:[ 4; 2; 4; 2 ] ()
  in
  let job =
    Storsim.Cluster.plan_reconfiguration sc.Workloads.Scenarios.cluster
      ~target:sc.Workloads.Scenarios.target
  in
  let inst = job.Storsim.Cluster.instance in
  Format.printf "Disk 5 failed; %d items must be re-created from replicas.@."
    (Migration.Instance.n_items inst);
  Format.printf "Lower bound for the recovery: %d rounds.@.@."
    (Migration.Lower_bounds.lower_bound ~rng inst);

  let report =
    Storsim.Fault.run_with_change sc.Workloads.Scenarios.cluster
      ~target:sc.Workloads.Scenarios.target
      ~plan:(Migration.plan ~rng Migration.Hetero)
      { Storsim.Fault.after_round = 3; disk = 0; new_cap = 1 }
  in
  Format.printf "phase 1 (before the traffic spike on disk 0):@.%a@.@."
    Storsim.Simulator.pp_report report.Storsim.Fault.before;
  Format.printf "phase 2 (disk 0 degraded to c=1, replanned):@.%a@.@."
    Storsim.Simulator.pp_report report.Storsim.Fault.after;
  Format.printf "total: %d rounds, wall %.1f@." report.Storsim.Fault.total_rounds
    report.Storsim.Fault.total_wall_time
