(* Load balancing: the paper's first motivating scenario.

   A cluster serves items whose popularity follows a Zipf law.  The
   demand distribution shifts between epochs; the layout is recomputed
   and the data must migrate to it as fast as possible, because the
   cluster serves sub-optimally until the migration finishes.

   The example compares planners on the same reconfiguration and shows
   the wall-clock impact of exploiting parallel transfers.

   Run with:  dune exec examples/load_balancing.exe *)

let () =
  let rng = Random.State.make [| 2026 |] in
  let sc =
    Workloads.Scenarios.rebalance rng ~n_disks:16 ~n_items:800 ~zipf_s:1.0
      ~shift_fraction:0.35 ~caps:[ 1; 2; 2; 4 ] ()
  in
  let job =
    Storsim.Cluster.plan_reconfiguration sc.Workloads.Scenarios.cluster
      ~target:sc.Workloads.Scenarios.target
  in
  let inst = job.Storsim.Cluster.instance in
  Format.printf "Rebalancing %d disks; %d items must move.@."
    (Storsim.Cluster.n_disks sc.Workloads.Scenarios.cluster)
    (Migration.Instance.n_items inst);
  Format.printf "Certified lower bound: %d rounds.@.@."
    (Migration.Lower_bounds.lower_bound ~rng inst);

  List.iter
    (fun alg ->
      (* fresh copies: the simulator mutates placements *)
      let sc =
        Workloads.Scenarios.rebalance
          (Random.State.make [| 2026 |])
          ~n_disks:16 ~n_items:800 ~zipf_s:1.0 ~shift_fraction:0.35
          ~caps:[ 1; 2; 2; 4 ] ()
      in
      let report =
        Storsim.Simulator.run sc.Workloads.Scenarios.cluster
          ~target:sc.Workloads.Scenarios.target
          ~plan:(Migration.plan ~rng alg)
      in
      Format.printf "%-8s %3d rounds   wall %.1f   utilization %.2f@."
        (Migration.algorithm_to_string alg)
        report.Storsim.Simulator.rounds report.Storsim.Simulator.wall_time
        report.Storsim.Simulator.mean_utilization)
    [ Migration.Hetero; Migration.Saia_split; Migration.Greedy ];

  (* what the same migration costs if parallelism is ignored, the
     assumption of most prior work the paper improves on *)
  let sc1 =
    Workloads.Scenarios.rebalance
      (Random.State.make [| 2026 |])
      ~n_disks:16 ~n_items:800 ~zipf_s:1.0 ~shift_fraction:0.35 ~caps:[ 1 ] ()
  in
  let report =
    Storsim.Simulator.run sc1.Workloads.Scenarios.cluster
      ~target:sc1.Workloads.Scenarios.target
      ~plan:(Migration.plan ~rng Migration.Hetero)
  in
  Format.printf "@.single-stream baseline (all c_v = 1): %d rounds, wall %.1f@."
    report.Storsim.Simulator.rounds report.Storsim.Simulator.wall_time
