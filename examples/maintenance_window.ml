(* Maintenance windows: partial migration under a round budget.

   A demand shift calls for a 20+-round migration, but the operator
   only has a short window tonight.  Which items should move?  The
   deadline planner keeps the heaviest-by-demand rounds of a full
   schedule, so every window recovers the most performance it can, and
   the deferred remainder seeds tomorrow's window.

   Run with:  dune exec examples/maintenance_window.exe *)

let () =
  let rng = Random.State.make [| 61 |] in
  let sc =
    Workloads.Scenarios.rebalance rng ~n_disks:16 ~n_items:800
      ~caps:[ 1; 2; 3 ] ()
  in
  let job =
    Storsim.Cluster.plan_reconfiguration sc.Workloads.Scenarios.cluster
      ~target:sc.Workloads.Scenarios.target
  in
  let inst = job.Storsim.Cluster.instance in
  let demands = sc.Workloads.Scenarios.demands in
  let weights e = demands.(job.Storsim.Cluster.items.(e)) in

  let full = Migration.plan ~rng Migration.Hetero inst in
  Format.printf "full migration: %d items over %d rounds@.@."
    (Migration.Instance.n_items inst)
    (Migration.Schedule.n_rounds full);

  Format.printf "%8s %8s %12s@." "window" "moved" "recovered";
  List.iter
    (fun budget ->
      let r =
        Migration.Deadline.plan_window ~rng:(Random.State.make [| 61 |])
          ~weights inst ~budget
      in
      (match Migration.Schedule.validate inst r.Migration.Deadline.schedule with
      | Ok () ->
          (* a window schedule only covers the moved subset, so the
             full-instance validator must complain about the deferred
             items — and about nothing else *)
          Format.printf "unexpected: window covers everything@."
      | Error _ when r.Migration.Deadline.deferred <> [] -> ()
      | Error msg -> failwith msg);
      Format.printf "%8d %8d %11.1f%%@." budget
        (List.length r.Migration.Deadline.moved)
        (100.0 *. r.Migration.Deadline.moved_weight
        /. r.Migration.Deadline.total_weight))
    [ 2; 5; 8; 12; 18 ];

  (* run two consecutive windows for real: tonight's, then tomorrow's *)
  Format.printf "@.two consecutive 8-round windows:@.";
  let window1 =
    Migration.Deadline.plan_window ~rng:(Random.State.make [| 61 |]) ~weights
      inst ~budget:8
  in
  List.iter
    (fun round ->
      List.iter
        (fun e -> Storsim.Cluster.apply_transfer sc.Workloads.Scenarios.cluster job e)
        round)
    (Array.to_list (Migration.Schedule.rounds window1.Migration.Deadline.schedule));
  let job2 =
    Storsim.Cluster.plan_reconfiguration sc.Workloads.Scenarios.cluster
      ~target:sc.Workloads.Scenarios.target
  in
  let rest = Migration.plan ~rng Migration.Hetero job2.Storsim.Cluster.instance in
  Format.printf
    "  window 1 moved %d items; %d remain, needing %d more rounds@."
    (List.length window1.Migration.Deadline.moved)
    (Migration.Instance.n_items job2.Storsim.Cluster.instance)
    (Migration.Schedule.n_rounds rest)
