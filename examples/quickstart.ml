(* Quickstart: the paper's Figure 1 worked example, end to end.

   Build a transfer multigraph, attach heterogeneous transfer
   constraints, compute the lower bounds of Section III, and plan a
   migration with each algorithm.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* The transfer graph: disks v0..v4, one edge per data item to move
     (parallel edges = several items between the same pair of disks). *)
  let g = Mgraph.Graph_gen.example_fig1 () in
  Format.printf "Transfer graph:@.%a@." Mgraph.Multigraph.pp g;

  (* Heterogeneous constraints: v0 and v3 are new fast devices that
     sustain 2 parallel transfers; the rest are older single-stream
     disks. *)
  let caps = [| 2; 1; 1; 2; 1 |] in
  let inst = Migration.Instance.create g ~caps in

  let lb1 = Migration.Lower_bounds.lb1 inst in
  let lb2 = Migration.Lower_bounds.lb2 ~rng:(Random.State.make [| 1 |]) inst in
  Format.printf "Lower bounds: LB1 (degree/constraint) = %d, LB2 (Γ) = %d@."
    lb1 lb2;

  (* Planners are first-class values in the Solver registry; resolve
     one by name (or use the Migration.Solver.* built-ins directly). *)
  let rng = Random.State.make [| 42 |] in
  List.iter
    (fun s ->
      (* even-opt requires all-even constraints; skip it here *)
      if s.Migration.Solver.can_solve inst then begin
        let sched = Migration.Solver.solve ~rng s inst in
        (match Migration.Schedule.validate inst sched with
        | Ok () -> ()
        | Error msg -> failwith msg);
        Format.printf "@.%s: %d rounds@.%a@." s.Migration.Solver.name
          (Migration.Schedule.n_rounds sched)
          Migration.Schedule.pp sched
      end)
    (Migration.Solver.all ());

  (* The "auto" planner is the full pipeline: decompose into connected
     components, pick a solver per component, merge the schedules.
     (The legacy enum API still works: Migration.plan Migration.Auto
     inst routes here.) *)
  let sched, report =
    Migration.Pipeline.solve ~rng ~choose:Migration.Pipeline.auto_choose inst
  in
  Format.printf "@.pipeline auto: %d rounds over %d component(s)@."
    (Migration.Schedule.n_rounds sched)
    report.Migration.Pipeline.components;
  List.iter
    (fun sel ->
      Format.printf "  component %d -> %s (%d rounds)@."
        sel.Migration.Pipeline.component sel.Migration.Pipeline.solver
        sel.Migration.Pipeline.rounds)
    report.Migration.Pipeline.selections;

  (* the exact optimum, for reference (instance is tiny) *)
  match Migration.Exact.opt_rounds inst with
  | Some opt -> Format.printf "@.exact optimum: %d rounds@." opt
  | None -> Format.printf "@.exact solver gave up@."
