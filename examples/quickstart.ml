(* Quickstart: the paper's Figure 1 worked example, end to end.

   Build a transfer multigraph, attach heterogeneous transfer
   constraints, compute the lower bounds of Section III, and plan a
   migration with each algorithm.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* The transfer graph: disks v0..v4, one edge per data item to move
     (parallel edges = several items between the same pair of disks). *)
  let g = Mgraph.Graph_gen.example_fig1 () in
  Format.printf "Transfer graph:@.%a@." Mgraph.Multigraph.pp g;

  (* Heterogeneous constraints: v0 and v3 are new fast devices that
     sustain 2 parallel transfers; the rest are older single-stream
     disks. *)
  let caps = [| 2; 1; 1; 2; 1 |] in
  let inst = Migration.Instance.create g ~caps in

  let lb1 = Migration.Lower_bounds.lb1 inst in
  let lb2 = Migration.Lower_bounds.lb2 ~rng:(Random.State.make [| 1 |]) inst in
  Format.printf "Lower bounds: LB1 (degree/constraint) = %d, LB2 (Γ) = %d@."
    lb1 lb2;

  let rng = Random.State.make [| 42 |] in
  List.iter
    (fun alg ->
      (* even-opt requires all-even constraints; skip it here *)
      if alg <> Migration.Even_opt then begin
        let sched = Migration.plan ~rng alg inst in
        (match Migration.Schedule.validate inst sched with
        | Ok () -> ()
        | Error msg -> failwith msg);
        Format.printf "@.%s: %d rounds@.%a@."
          (Migration.algorithm_to_string alg)
          (Migration.Schedule.n_rounds sched)
          Migration.Schedule.pp sched
      end)
    Migration.all_algorithms;

  (* the exact optimum, for reference (instance is tiny) *)
  match Migration.Exact.opt_rounds inst with
  | Some opt -> Format.printf "@.exact optimum: %d rounds@." opt
  | None -> Format.printf "@.exact solver gave up@."
