(* Replication fan-out: data migration with cloning.

   A content cluster must push hot items to many replicas (the
   video-on-demand case the paper's related work covers via the
   cloning model of Khuller, Kim & Wan).  Any disk that already
   received a copy serves others in later rounds, so replication
   spreads like a broadcast tree — and disks with higher transfer
   constraints fan out faster.

   Run with:  dune exec examples/replication.exe *)

let () =
  let n = 24 in
  let rng = Random.State.make [| 99 |] in

  (* ten hot items; each starts on one disk and must reach a third of
     the cluster *)
  let demands =
    Array.init 10 (fun i ->
        let src = (i * 7) mod n in
        let dests =
          List.init n Fun.id
          |> List.filter (fun v -> v <> src && Random.State.int rng 3 = 0)
        in
        { Migration.Cloning.sources = [ src ]; destinations = dests })
  in
  let total_dests =
    Array.fold_left
      (fun acc d -> acc + List.length d.Migration.Cloning.destinations)
      0 demands
  in
  Format.printf "replicating 10 items to %d destinations on %d disks@.@."
    total_dests n;

  List.iter
    (fun cap ->
      let t =
        Migration.Cloning.create ~n_disks:n ~caps:(Array.make n cap) demands
      in
      let plan = Migration.Cloning.plan ~rng t in
      (match Migration.Cloning.validate t plan with
      | Ok () -> ()
      | Error msg -> failwith msg);
      let transfers =
        Array.fold_left (fun acc r -> acc + List.length r) 0 plan
      in
      Format.printf
        "c = %d everywhere: %2d rounds (lower bound %2d), %d transfers@." cap
        (Array.length plan)
        (Migration.Cloning.lower_bound t)
        transfers)
    [ 1; 2; 4 ];

  (* a single source under heterogeneous constraints: the broadcast
     tree grows by the capacity of whoever already holds a copy *)
  Format.printf "@.single item, 1 source, 23 destinations:@.";
  List.iter
    (fun caps_desc ->
      let name, caps =
        match caps_desc with
        | `Uniform c -> (Printf.sprintf "uniform c=%d" c, Array.make n c)
        | `Mixed ->
            ( "mixed 1/4 (new racks fast)",
              Array.init n (fun v -> if v mod 4 = 0 then 4 else 1) )
      in
      let t =
        Migration.Cloning.create ~n_disks:n ~caps
          [|
            {
              Migration.Cloning.sources = [ 0 ];
              destinations = List.init (n - 1) (fun v -> v + 1);
            };
          |]
      in
      let plan = Migration.Cloning.plan ~rng t in
      Format.printf "  %-26s %d rounds@." name (Array.length plan))
    [ `Uniform 1; `Uniform 2; `Mixed ]
