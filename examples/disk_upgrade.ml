(* Disk upgrade: heterogeneous expansion.

   A cluster of older disks (c = 2) gains a rack of new devices that
   sustain 6 parallel streams.  Data must spread onto the new disks.
   The example shows (a) the optimal even-constraint scheduler of the
   paper's Section IV at work, and (b) what is lost by treating the
   cluster as homogeneous at the speed of its slowest disk.

   Run with:  dune exec examples/disk_upgrade.exe *)

let build () =
  Workloads.Scenarios.disk_addition
    (Random.State.make [| 7; 7 |])
    ~n_old:12 ~n_new:4 ~n_items:900 ~old_cap:2 ~new_cap:6 ()

let () =
  let sc = build () in
  let job =
    Storsim.Cluster.plan_reconfiguration sc.Workloads.Scenarios.cluster
      ~target:sc.Workloads.Scenarios.target
  in
  let inst = job.Storsim.Cluster.instance in
  Format.printf
    "Expansion: 12 old disks (c=2) + 4 new disks (c=6); %d items move.@."
    (Migration.Instance.n_items inst);

  (* all constraints even -> Theorem 4.1 applies: schedule is optimal *)
  let lb1 = Migration.Lower_bounds.lb1 inst in
  let sched = Migration.plan Migration.Even_opt inst in
  Format.printf "even-opt: %d rounds (LB1 = %d -> provably optimal)@."
    (Migration.Schedule.n_rounds sched) lb1;

  let report =
    Storsim.Simulator.run sc.Workloads.Scenarios.cluster
      ~target:sc.Workloads.Scenarios.target
      ~plan:(Migration.plan Migration.Even_opt)
  in
  Format.printf "simulated: %a@.@." Storsim.Simulator.pp_report report;

  (* homogeneous strawman: pretend every disk only does c = 1 *)
  let sc' = build () in
  let job' =
    Storsim.Cluster.plan_reconfiguration sc'.Workloads.Scenarios.cluster
      ~target:sc'.Workloads.Scenarios.target
  in
  let inst1 =
    Migration.Instance.uniform
      (Migration.Instance.graph job'.Storsim.Cluster.instance)
      ~cap:1
  in
  let sched1 = Migration.plan Migration.Hetero inst1 in
  Format.printf
    "homogeneous strawman (c=1 everywhere): %d rounds — %.1fx more rounds@."
    (Migration.Schedule.n_rounds sched1)
    (float_of_int (Migration.Schedule.n_rounds sched1)
    /. float_of_int (max 1 (Migration.Schedule.n_rounds sched)))
