(* Benchmark harness: regenerates every figure and theorem-level claim
   of the paper (see DESIGN.md section 4 and EXPERIMENTS.md).

     E1 fig1      the worked example instance
     E2 fig2      homogeneous vs parallel transfers (3M vs 2M)
     E3 thm41     even constraints: rounds = LB1 always
     E4 thm51     general constraints: additive gap vs OPT / lower bound
     E5 baselines hetero vs Saia-1.5 vs greedy
     E6 lb2       instances where Γ (Lemma 3.1) beats LB1
     E7 runtime   scaling, plus Bechamel micro-benchmarks
     E8 scenarios end-to-end cluster scenarios

   Run everything:         dune exec bench/main.exe
   Run one experiment:     dune exec bench/main.exe -- fig2 thm51 *)

module M = Migration
module Multigraph = Mgraph.Multigraph

let rng_of seed = Random.State.make [| seed; 0xbe7c |]

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let fail_invalid inst sched where =
  match M.Schedule.validate inst sched with
  | Ok () -> ()
  | Error msg -> failwith (Printf.sprintf "%s: invalid schedule: %s" where msg)

(* ------------------------------------------------------------------ *)
(* E1: Figure 1 worked example                                         *)

let e1_fig1 () =
  header "E1 [Figure 1]  worked example instance";
  let g = Mgraph.Graph_gen.example_fig1 () in
  let inst = M.Instance.create g ~caps:[| 2; 1; 1; 2; 1 |] in
  let rng = rng_of 1 in
  let lb = M.Lower_bounds.lower_bound ~rng inst in
  let opt = M.Exact.opt_rounds inst in
  Printf.printf "%d disks, %d items, lower bound %d, exact OPT %s\n\n"
    (M.Instance.n_disks inst) (M.Instance.n_items inst) lb
    (match opt with Some o -> string_of_int o | None -> "?");
  Printf.printf "%-10s %7s\n" "algorithm" "rounds";
  List.iter
    (fun alg ->
      let sched = M.plan ~rng:(rng_of 2) alg inst in
      fail_invalid inst sched "e1";
      Printf.printf "%-10s %7d\n"
        (M.algorithm_to_string alg)
        (M.Schedule.n_rounds sched))
    [ M.Hetero; M.Saia_split; M.Greedy ]

(* ------------------------------------------------------------------ *)
(* E2: Figure 2 — parallel transfers beat single-stream migration      *)

let e2_fig2 () =
  header "E2 [Figure 2]  triangle with M parallel items per pair";
  Printf.printf
    "paper: c=1 needs 3M time units; c=2 finishes in 2M (M rounds x 2)\n\n";
  Printf.printf "%6s | %10s %10s | %10s %10s | %7s\n" "M" "c=1 rounds"
    "c=1 time" "c=2 rounds" "c=2 time" "speedup";
  List.iter
    (fun m ->
      let g = Mgraph.Graph_gen.triangle_stack m in
      let run cap =
        let inst = M.Instance.uniform g ~cap in
        let sched = M.plan ~rng:(rng_of m) M.Auto inst in
        fail_invalid inst sched "e2";
        let disks =
          Array.init 3 (fun id -> Storsim.Disk.make ~id ~cap ())
        in
        let job =
          {
            Storsim.Cluster.instance = inst;
            items = Array.init (3 * m) Fun.id;
            sources =
              Array.init (3 * m) (fun e -> fst (Multigraph.endpoints g e));
            targets =
              Array.init (3 * m) (fun e -> snd (Multigraph.endpoints g e));
          }
        in
        ( M.Schedule.n_rounds sched,
          Storsim.Bandwidth.schedule_duration ~disks job sched )
      in
      let r1, t1 = run 1 in
      let r2, t2 = run 2 in
      Printf.printf "%6d | %10d %10.0f | %10d %10.0f | %6.2fx\n" m r1 t1 r2 t2
        (t1 /. t2))
    [ 1; 2; 4; 8; 16; 32; 64 ]

(* ------------------------------------------------------------------ *)
(* E3: Theorem 4.1 — even constraints are solved optimally             *)

let e3_thm41 () =
  header "E3 [Theorem 4.1]  even constraints: rounds = LB1 on every instance";
  Printf.printf "%5s %6s %12s | %6s %6s %9s\n" "n" "m" "caps" "LB1" "rounds"
    "optimal?";
  let total = ref 0 and optimal = ref 0 in
  List.iter
    (fun (n, m, menu, label) ->
      List.iter
        (fun seed ->
          let rng = rng_of seed in
          let g = Mgraph.Graph_gen.gnm rng ~n ~m in
          let inst = M.Instance.random_caps rng g ~choices:menu in
          let sched = M.Even_optimal.schedule inst in
          fail_invalid inst sched "e3";
          let lb1 = M.Lower_bounds.lb1 inst in
          let r = M.Schedule.n_rounds sched in
          incr total;
          if r = lb1 then incr optimal;
          if seed = 1 then
            Printf.printf "%5d %6d %12s | %6d %6d %9s\n" n m label lb1 r
              (if r = lb1 then "yes" else "NO"))
        [ 1; 2; 3; 4; 5 ])
    [
      (8, 40, [ 2 ], "{2}");
      (16, 120, [ 2; 4 ], "{2,4}");
      (64, 500, [ 2; 4; 8 ], "{2,4,8}");
      (128, 1500, [ 2; 6 ], "{2,6}");
      (256, 4000, [ 2; 4; 6; 8 ], "{2..8}");
    ];
  Printf.printf "\noptimal on %d / %d instances (paper: always)\n" !optimal
    !total

(* ------------------------------------------------------------------ *)
(* E4: Theorem 5.1 — the general algorithm's additive gap              *)

let e4_thm51 () =
  header
    "E4 [Theorem 5.1]  arbitrary constraints: rounds <= OPT + O(sqrt OPT)";
  Printf.printf
    "gap = rounds - LB (LB <= OPT); paper predicts gap in O(sqrt OPT),\n\
     i.e. ratio -> 1 as instances grow\n\n";
  Printf.printf "%6s %7s | %7s %7s %7s | %9s %9s\n" "n" "m" "LB" "rounds"
    "gap" "gap/sqrtLB" "ratio";
  List.iter
    (fun (n, m) ->
      let trials = 5 in
      let lb_sum = ref 0 and gap_sum = ref 0 and rounds_sum = ref 0 in
      for seed = 1 to trials do
        let rng = rng_of ((1000 * n) + seed) in
        let g = Mgraph.Graph_gen.gnm rng ~n ~m in
        let inst = M.Instance.random_caps rng g ~choices:[ 1; 2; 3; 5; 7 ] in
        let sched, stats = M.Hetero_coloring.schedule_stats ~rng inst in
        fail_invalid inst sched "e4";
        let r = M.Schedule.n_rounds sched in
        lb_sum := !lb_sum + stats.M.Hetero_coloring.lb;
        rounds_sum := !rounds_sum + r;
        gap_sum := !gap_sum + (r - stats.M.Hetero_coloring.lb)
      done;
      let lb = float_of_int !lb_sum /. float_of_int trials in
      let gap = float_of_int !gap_sum /. float_of_int trials in
      let rounds = float_of_int !rounds_sum /. float_of_int trials in
      Printf.printf "%6d %7d | %7.1f %7.1f %7.1f | %9.3f %9.4f\n" n m lb rounds
        gap
        (if lb > 0.0 then gap /. sqrt lb else 0.0)
        (if lb > 0.0 then rounds /. lb else 1.0))
    [
      (8, 30); (12, 80); (16, 160); (24, 400); (32, 800); (48, 2000);
      (64, 4000); (96, 8000);
    ];
  (* small instances: measure against true OPT *)
  Printf.printf "\nvs exact OPT on tiny instances:\n";
  let hit = ref 0 and total = ref 0 and gap1 = ref 0 in
  for seed = 1 to 40 do
    let rng = rng_of (7000 + seed) in
    let g = Mgraph.Graph_gen.gnm rng ~n:5 ~m:(3 + Random.State.int rng 8) in
    let inst = M.Instance.random_caps rng g ~choices:[ 1; 2; 3 ] in
    match M.Exact.opt_rounds inst with
    | None -> ()
    | Some opt ->
        incr total;
        let r = M.Schedule.n_rounds (M.Hetero_coloring.schedule ~rng inst) in
        if r = opt then incr hit else if r = opt + 1 then incr gap1
  done;
  Printf.printf "exact OPT matched: %d / %d (OPT+1: %d)\n" !hit !total !gap1

(* ------------------------------------------------------------------ *)
(* E5: baselines — who wins, by what factor                            *)

let e5_baselines () =
  header "E5 [baselines]  general algorithm vs Saia-1.5 vs greedy";
  Printf.printf "%12s | %9s %9s %9s   (mean rounds / LB over 5 seeds)\n"
    "family" "hetero" "saia" "greedy";
  let families =
    [
      ("gnm sparse", fun rng -> Mgraph.Graph_gen.gnm rng ~n:32 ~m:200);
      ("gnm dense", fun rng -> Mgraph.Graph_gen.gnm rng ~n:32 ~m:2000);
      ("power-law", fun rng -> Mgraph.Graph_gen.power_law rng ~n:32 ~m:600);
      ( "clustered",
        fun rng -> Mgraph.Graph_gen.clustered rng ~k:4 ~size:8 ~intra:150 ~inter:40 );
      ("triangle", fun _ -> Mgraph.Graph_gen.triangle_stack 40);
    ]
  in
  List.iter
    (fun (name, make) ->
      let ratios = Hashtbl.create 3 in
      List.iter
        (fun alg -> Hashtbl.add ratios alg (ref 0.0))
        [ M.Hetero; M.Saia_split; M.Greedy ];
      let trials = 5 in
      for seed = 1 to trials do
        let rng = rng_of (31 * seed) in
        let g = make rng in
        let inst = M.Instance.random_caps rng g ~choices:[ 1; 2; 3; 5 ] in
        let lb = float_of_int (M.Lower_bounds.lower_bound ~rng inst) in
        List.iter
          (fun alg ->
            let sched = M.plan ~rng:(rng_of (17 * seed)) alg inst in
            fail_invalid inst sched "e5";
            let r = float_of_int (M.Schedule.n_rounds sched) in
            let acc = Hashtbl.find ratios alg in
            acc := !acc +. (r /. Float.max lb 1.0))
          [ M.Hetero; M.Saia_split; M.Greedy ]
      done;
      let mean alg = !(Hashtbl.find ratios alg) /. float_of_int trials in
      Printf.printf "%12s | %8.3fx %8.3fx %8.3fx\n" name (mean M.Hetero)
        (mean M.Saia_split) (mean M.Greedy))
    families

(* ------------------------------------------------------------------ *)
(* E6: Lemma 3.1 — when Γ beats LB1                                    *)

let e6_lb2 () =
  header "E6 [Lemma 3.1]  dense subsets: Γ can exceed LB1";
  Printf.printf "%18s | %5s %5s | %6s (rounds achieved by hetero)\n"
    "instance" "LB1" "Γ" "rounds";
  let cases =
    [
      ( "triangle M=20, c=1",
        M.Instance.uniform (Mgraph.Graph_gen.triangle_stack 20) ~cap:1 );
      ( "triangle M=20, c=2",
        M.Instance.uniform (Mgraph.Graph_gen.triangle_stack 20) ~cap:2 );
      ( "K5 x20, c=1",
        (let g = Multigraph.create ~n:5 () in
         for _ = 1 to 20 do
           for u = 0 to 4 do
             for v = u + 1 to 4 do
               ignore (Multigraph.add_edge g u v)
             done
           done
         done;
         M.Instance.uniform g ~cap:1) );
      ( "clustered, mixed c",
        (let rng = rng_of 5 in
         let g = Mgraph.Graph_gen.clustered rng ~k:3 ~size:4 ~intra:120 ~inter:10 in
         M.Instance.random_caps rng g ~choices:[ 1; 2 ]) );
    ]
  in
  List.iter
    (fun (name, inst) ->
      let rng = rng_of 6 in
      let lb1 = M.Lower_bounds.lb1 inst in
      let gamma = M.Lower_bounds.lb2 ~rng inst in
      let sched = M.Hetero_coloring.schedule ~rng inst in
      fail_invalid inst sched "e6";
      Printf.printf "%18s | %5d %5d | %6d\n" name lb1 gamma
        (M.Schedule.n_rounds sched))
    cases

(* ------------------------------------------------------------------ *)
(* E7: runtime scaling + Bechamel micro-benchmarks                     *)

let time_once f =
  let t0 = Sys.time () in
  let x = f () in
  (x, Sys.time () -. t0)

let e7_runtime () =
  header "E7 [runtime]  planning cost scaling";
  Printf.printf "%8s %8s | %12s %12s %12s  (seconds, single run)\n" "n" "m"
    "even-opt" "hetero" "saia";
  List.iter
    (fun (n, m) ->
      let rng = rng_of (n + m) in
      let g = Mgraph.Graph_gen.gnm rng ~n ~m in
      let even = M.Instance.random_caps (rng_of 1) g ~choices:[ 2; 4 ] in
      let mixed = M.Instance.random_caps (rng_of 2) g ~choices:[ 1; 2; 3; 5 ] in
      let _, t_even = time_once (fun () -> M.Even_optimal.schedule even) in
      let _, t_het =
        time_once (fun () -> M.Hetero_coloring.schedule ~rng:(rng_of 3) mixed)
      in
      let _, t_saia =
        time_once (fun () -> M.Saia.schedule ~rng:(rng_of 4) mixed)
      in
      Printf.printf "%8d %8d | %12.3f %12.3f %12.3f\n" n m t_even t_het t_saia)
    [ (32, 500); (64, 2000); (128, 8000); (256, 32000) ]

let e7_bechamel () =
  header "E7b [Bechamel]  micro-benchmarks (ns per planning run)";
  let open Bechamel in
  let mk_instance seed n m menu =
    let rng = rng_of seed in
    let g = Mgraph.Graph_gen.gnm rng ~n ~m in
    M.Instance.random_caps rng g ~choices:menu
  in
  let even_inst = mk_instance 11 24 300 [ 2; 4 ] in
  let mixed_inst = mk_instance 12 24 300 [ 1; 2; 3 ] in
  let tests =
    [
      Test.make ~name:"even_optimal/n24/m300"
        (Staged.stage (fun () -> M.Even_optimal.schedule even_inst));
      Test.make ~name:"hetero/n24/m300"
        (Staged.stage (fun () ->
             M.Hetero_coloring.schedule ~rng:(rng_of 13) mixed_inst));
      Test.make ~name:"saia/n24/m300"
        (Staged.stage (fun () -> M.Saia.schedule ~rng:(rng_of 14) mixed_inst));
      Test.make ~name:"greedy/n24/m300"
        (Staged.stage (fun () ->
             Coloring.Greedy_coloring.color
               (M.Instance.graph mixed_inst)
               ~cap:(M.Instance.cap mixed_inst)));
      Test.make ~name:"lower_bound/n24/m300"
        (Staged.stage (fun () ->
             M.Lower_bounds.lower_bound ~rng:(rng_of 15) mixed_inst));
    ]
  in
  let grouped = Test.make_grouped ~name:"planners" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
  List.iter
    (fun (name, o) ->
      match Analyze.OLS.estimates o with
      | Some [ ns ] -> Printf.printf "%-32s %12.0f ns/run\n" name ns
      | _ -> Printf.printf "%-32s (no estimate)\n" name)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)
(* E8: end-to-end cluster scenarios                                    *)

let e8_scenarios () =
  header "E8 [scenarios]  end-to-end cluster migrations";
  Printf.printf "%18s %8s | %7s %7s %8s %7s\n" "scenario" "alg" "moves"
    "rounds" "wall" "util";
  let builders =
    [
      ( "rebalance",
        fun rng ->
          Workloads.Scenarios.rebalance rng ~n_disks:24 ~n_items:1200
            ~caps:[ 1; 2; 2; 4 ] () );
      ( "disk-addition",
        fun rng ->
          Workloads.Scenarios.disk_addition rng ~n_old:18 ~n_new:6
            ~n_items:1200 ~old_cap:2 ~new_cap:4 () );
      ( "disk-removal",
        fun rng ->
          Workloads.Scenarios.disk_removal rng ~n_disks:24 ~n_remove:6
            ~n_items:1200 ~caps:[ 2; 3 ] () );
      ( "failure-recovery",
        fun rng ->
          Workloads.Scenarios.failure_recovery rng ~n_disks:24 ~failed:3
            ~n_items:1200 ~caps:[ 2; 2; 4 ] () );
    ]
  in
  List.iter
    (fun (name, build) ->
      List.iter
        (fun alg ->
          (* fresh scenario per run: the simulator mutates placements *)
          let sc = build (rng_of 2024) in
          let report =
            Storsim.Simulator.run sc.Workloads.Scenarios.cluster
              ~target:sc.Workloads.Scenarios.target
              ~plan:(M.plan ~rng:(rng_of 9) alg)
          in
          Printf.printf "%18s %8s | %7d %7d %8.1f %7.2f\n" name
            (M.algorithm_to_string alg)
            report.Storsim.Simulator.items_moved report.Storsim.Simulator.rounds
            report.Storsim.Simulator.wall_time
            report.Storsim.Simulator.mean_utilization)
        [ M.Hetero; M.Saia_split; M.Greedy ])
    builders

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* E9: forwarding (helpers) vs the direct-transfer assumption          *)

let e9_forwarding () =
  header "E9 [extension]  forwarding through helper disks (Section II refs)";
  Printf.printf
    "triangle bottleneck (Γ = 3M with c=1) plus idle helper disks\n\n";
  Printf.printf "%4s %8s | %7s %10s %8s | %8s\n" "M" "helpers" "direct"
    "forwarded" "relayed" "saving";
  List.iter
    (fun (m, h) ->
      let g = Multigraph.create ~n:(3 + h) () in
      List.iter
        (fun (u, v) ->
          for _ = 1 to m do
            ignore (Multigraph.add_edge g u v)
          done)
        [ (0, 1); (1, 2); (0, 2) ];
      let inst = M.Instance.uniform g ~cap:1 in
      let plan, stats = M.Forwarding.plan_with_helpers ~rng:(rng_of m) inst in
      (match M.Forwarding.validate inst plan with
      | Ok () -> ()
      | Error msg -> failwith ("e9: " ^ msg));
      Printf.printf "%4d %8d | %7d %10d %8d | %7.1f%%\n" m h
        stats.M.Forwarding.direct_rounds stats.M.Forwarding.rounds
        stats.M.Forwarding.relayed
        (100.0
        *. float_of_int
             (stats.M.Forwarding.direct_rounds - stats.M.Forwarding.rounds)
        /. float_of_int stats.M.Forwarding.direct_rounds))
    [ (8, 0); (8, 1); (8, 2); (8, 4); (16, 4); (16, 8); (32, 8); (32, 16) ]

(* ------------------------------------------------------------------ *)
(* E10: multiplicity halving (Section V closing remark)                *)

let e10_halving () =
  header "E10 [ablation]  multiplicity halving (Section V closing remark)";
  Printf.printf "%6s %8s | %10s %10s | %10s %10s\n" "mult" "items"
    "direct (s)" "halved (s)" "direct rds" "halved rds";
  List.iter
    (fun mult ->
      let rng = rng_of mult in
      let base = Mgraph.Graph_gen.gnm rng ~n:12 ~m:30 in
      let g = Multigraph.create ~n:12 () in
      Multigraph.iter_edges base (fun { Multigraph.u; v; _ } ->
          for _ = 1 to mult do
            ignore (Multigraph.add_edge g u v)
          done);
      let inst = M.Instance.random_caps rng g ~choices:[ 1; 2; 3 ] in
      let direct, t_direct =
        time_once (fun () -> M.Hetero_coloring.schedule ~rng:(rng_of 1) inst)
      in
      let halved, t_halved =
        time_once (fun () -> M.Halving.schedule ~rng:(rng_of 1) inst)
      in
      fail_invalid inst direct "e10 direct";
      fail_invalid inst halved "e10 halved";
      Printf.printf "%6d %8d | %10.3f %10.3f | %10d %10d\n" mult
        (M.Instance.n_items inst) t_direct t_halved
        (M.Schedule.n_rounds direct) (M.Schedule.n_rounds halved))
    [ 4; 16; 64; 256 ]

(* ------------------------------------------------------------------ *)
(* E11: completion-time objectives (Section II refs)                   *)

let e11_completion () =
  header "E11 [ablation]  round ordering for completion-time objectives";
  Printf.printf "%6s | %12s %12s | %12s %12s\n" "seed" "items(id)"
    "items(sort)" "disks(id)" "disks(reord)";
  List.iter
    (fun seed ->
      let rng = rng_of seed in
      let g = Mgraph.Graph_gen.power_law rng ~n:24 ~m:600 in
      let inst = M.Instance.random_caps rng g ~choices:[ 1; 2; 4 ] in
      let sched = M.Hetero_coloring.schedule ~rng inst in
      let items_id = M.Completion_time.item_completion_sum sched in
      let items_sorted =
        M.Completion_time.item_completion_sum
          (M.Completion_time.reorder_for_items sched)
      in
      let disks_id = M.Completion_time.disk_completion_sum inst sched in
      let disks_re =
        M.Completion_time.disk_completion_sum inst
          (M.Completion_time.reorder_for_disks inst sched)
      in
      Printf.printf "%6d | %12.0f %12.0f | %12.0f %12.0f\n" seed items_id
        items_sorted disks_id disks_re)
    [ 1; 2; 3; 4 ]

(* ------------------------------------------------------------------ *)
(* E12: space constraints and bypass disks (Hall et al., Section II)   *)

let e12_space () =
  header "E12 [extension]  space constraints and bypass disks";
  Printf.printf
    "rotation workloads on full disks: spare units vs rounds needed\n\n";
  Printf.printf "%6s %8s | %8s %8s %8s\n" "disks" "spare" "rounds" "relays"
    "feasible";
  List.iter
    (fun (n, spare) ->
      (* a rotation: disk d sends one item to disk d+1 *)
      let g = Multigraph.create ~n:(n + 1) () in
      for d = 0 to n - 1 do
        ignore (Multigraph.add_edge g d ((d + 1) mod n))
      done;
      let inst = M.Instance.uniform g ~cap:2 in
      let cfg =
        {
          M.Space.space =
            Array.init (n + 1) (fun d -> if d = n then 1 else 1 + spare);
          initial_load = Array.init (n + 1) (fun d -> if d = n then 0 else 1);
          bypass = [ n ];
        }
      in
      match M.Space.plan inst cfg with
      | plan ->
          (match M.Space.check_plan inst cfg plan with
          | Ok () -> ()
          | Error msg -> failwith ("e12: " ^ msg));
          let relays =
            Array.to_list (M.Forwarding.rounds plan)
            |> List.concat
            |> List.filter (fun h -> h.M.Forwarding.dst = n)
            |> List.length
          in
          Printf.printf "%6d %8d | %8d %8d %8s\n" n spare
            (M.Forwarding.n_rounds plan) relays "yes"
      | exception M.Space.Stuck _ ->
          Printf.printf "%6d %8d | %8s %8s %8s\n" n spare "-" "-" "stuck")
    [ (6, 0); (6, 1); (12, 0); (12, 1); (24, 0); (24, 2) ]

(* ------------------------------------------------------------------ *)
(* E13: cloning (Khuller-Kim-Wan model, Section II)                    *)

let e13_cloning () =
  header "E13 [extension]  migration with cloning (broadcast trees)";
  Printf.printf "%8s %8s %6s | %8s %8s\n" "disks" "items" "caps" "LB" "rounds";
  List.iter
    (fun (n, items, cap) ->
      let rng = rng_of (n + items + cap) in
      let caps = Array.make n cap in
      let demands =
        Array.init items (fun _ ->
            let src = Random.State.int rng n in
            let dests =
              List.init n Fun.id
              |> List.filter (fun v -> v <> src && Random.State.int rng 3 = 0)
            in
            { M.Cloning.sources = [ src ]; destinations = dests })
      in
      let t = M.Cloning.create ~n_disks:n ~caps demands in
      let plan = M.Cloning.plan ~rng t in
      (match M.Cloning.validate t plan with
      | Ok () -> ()
      | Error msg -> failwith ("e13: " ^ msg));
      Printf.printf "%8d %8d %6d | %8d %8d\n" n items cap
        (M.Cloning.lower_bound t) (Array.length plan))
    [ (16, 20, 1); (16, 20, 2); (32, 60, 1); (32, 60, 4); (64, 120, 2) ]

(* ------------------------------------------------------------------ *)
(* E14: design-choice ablations                                        *)

let e14_ablations () =
  header "E14 [ablation]  design choices in the general algorithm";
  (* (a) edge ordering for the greedy baseline *)
  Printf.printf "(a) greedy edge order (rounds, mean of 5 seeds):\n";
  Printf.printf "%16s %10s %10s %10s\n" "family" "id-order" "hardest" "lb";
  List.iter
    (fun (name, make) ->
      let sum_id = ref 0 and sum_hard = ref 0 and sum_lb = ref 0 in
      for seed = 1 to 5 do
        let rng = rng_of seed in
        let g : Multigraph.t = make rng in
        let inst = M.Instance.random_caps rng g ~choices:[ 1; 2; 3 ] in
        let greedy order =
          let ec =
            Coloring.Greedy_coloring.color ?order (M.Instance.graph inst)
              ~cap:(M.Instance.cap inst)
          in
          M.Schedule.n_rounds (M.Schedule.of_coloring ec)
        in
        let hardest =
          let weight e =
            let u, v = Multigraph.endpoints g e in
            M.Instance.degree_ratio inst u + M.Instance.degree_ratio inst v
          in
          List.init (Multigraph.n_edges g) Fun.id
          |> List.map (fun e -> (weight e, e))
          |> List.sort (fun (a, _) (b, _) -> compare b a)
          |> List.map snd
        in
        sum_id := !sum_id + greedy None;
        sum_hard := !sum_hard + greedy (Some hardest);
        sum_lb := !sum_lb + M.Lower_bounds.lower_bound ~rng inst
      done;
      Printf.printf "%16s %10.1f %10.1f %10.1f\n" name
        (float_of_int !sum_id /. 5.0)
        (float_of_int !sum_hard /. 5.0)
        (float_of_int !sum_lb /. 5.0))
    [
      ("power-law", fun rng -> Mgraph.Graph_gen.power_law rng ~n:24 ~m:500);
      ("gnm", fun rng -> Mgraph.Graph_gen.gnm rng ~n:24 ~m:500);
      ("triangle", fun _ -> Mgraph.Graph_gen.triangle_stack 30);
    ];
  (* (b') refine post-pass: rounds reclaimed from the greedy baseline *)
  Printf.printf "\n(b') refine post-pass on greedy schedules (5 seeds):\n";
  Printf.printf "%16s %10s %10s %10s\n" "family" "greedy" "refined" "lb";
  List.iter
    (fun (name, make) ->
      let g_sum = ref 0 and r_sum = ref 0 and lb_sum = ref 0 in
      for seed = 1 to 5 do
        let rng = rng_of (seed * 7) in
        let g : Multigraph.t = make rng in
        let inst = M.Instance.random_caps rng g ~choices:[ 1; 2; 3 ] in
        let ec =
          Coloring.Greedy_coloring.color (M.Instance.graph inst)
            ~cap:(M.Instance.cap inst)
        in
        let sched = M.Schedule.of_coloring ec in
        let refined, _ = M.Refine.refine inst sched in
        g_sum := !g_sum + M.Schedule.n_rounds sched;
        r_sum := !r_sum + M.Schedule.n_rounds refined;
        lb_sum := !lb_sum + M.Lower_bounds.lower_bound ~rng inst
      done;
      Printf.printf "%16s %10.1f %10.1f %10.1f\n" name
        (float_of_int !g_sum /. 5.0)
        (float_of_int !r_sum /. 5.0)
        (float_of_int !lb_sum /. 5.0))
    [
      ("power-law", fun rng -> Mgraph.Graph_gen.power_law rng ~n:24 ~m:500);
      ("gnm", fun rng -> Mgraph.Graph_gen.gnm rng ~n:24 ~m:500);
    ];
  (* (b) lower-bound components: which term wins where *)
  Printf.printf "\n(b) lower-bound terms (LB1 vs Γ):\n";
  Printf.printf "%16s %8s %8s %8s\n" "family" "LB1" "Γ" "winner";
  List.iter
    (fun (name, inst) ->
      let lb1 = M.Lower_bounds.lb1 inst in
      let gamma = M.Lower_bounds.lb2 ~rng:(rng_of 3) inst in
      Printf.printf "%16s %8d %8d %8s\n" name lb1 gamma
        (if gamma > lb1 then "Γ" else if lb1 > gamma then "LB1" else "tie"))
    [
      ( "sparse gnm",
        M.Instance.random_caps (rng_of 1)
          (Mgraph.Graph_gen.gnm (rng_of 1) ~n:32 ~m:100)
          ~choices:[ 1; 2; 3 ] );
      ( "dense clique",
        M.Instance.uniform (Mgraph.Graph_gen.triangle_stack 30) ~cap:1 );
      ( "star",
        M.Instance.random_caps (rng_of 2)
          (Mgraph.Graph_gen.star ~leaves:40)
          ~choices:[ 1; 2; 3 ] );
    ]

(* ------------------------------------------------------------------ *)
(* E15: what the round abstraction costs                               *)

let e15_async () =
  header "E15 [extension]  round barriers vs work-conserving execution";
  Printf.printf
    "same transfers, three executions: barrier rounds (paper model),\n\
     async with schedule priorities, async FIFO (no planning)\n\n";
  Printf.printf "%6s %6s | %10s %10s %10s | %12s\n" "disks" "items" "barrier"
    "async+plan" "async-fifo" "barrier cost";
  List.iter
    (fun (n, m_items) ->
      let rng = rng_of (n + m_items) in
      let caps = Array.init n (fun i -> 1 + (i mod 4)) in
      let disks =
        Array.mapi (fun id cap -> Storsim.Disk.make ~id ~cap ()) caps
      in
      let g = Multigraph.create ~n () in
      let sources = Array.make m_items 0 and targets = Array.make m_items 0 in
      for e = 0 to m_items - 1 do
        let u = Random.State.int rng n in
        let rec pick () =
          let v = Random.State.int rng n in
          if v = u then pick () else v
        in
        let v = pick () in
        ignore (Multigraph.add_edge g u v);
        sources.(e) <- u;
        targets.(e) <- v
      done;
      let inst = M.Instance.create g ~caps in
      let job =
        {
          Storsim.Cluster.instance = inst;
          items = Array.init m_items Fun.id;
          sources;
          targets;
        }
      in
      let sched = M.plan ~rng M.Hetero inst in
      let barrier = Storsim.Bandwidth.schedule_duration ~disks job sched in
      let planned =
        Storsim.Async_exec.run ~disks job (Storsim.Async_exec.By_schedule sched)
      in
      let fifo = Storsim.Async_exec.run ~disks job Storsim.Async_exec.Fifo in
      Printf.printf "%6d %6d | %10.1f %10.1f %10.1f | %10.1f%%\n" n m_items
        barrier planned.Storsim.Async_exec.makespan
        fifo.Storsim.Async_exec.makespan
        (100.0
        *. (barrier -. planned.Storsim.Async_exec.makespan)
        /. barrier))
    [ (8, 60); (16, 200); (32, 800); (64, 2000) ]

(* ------------------------------------------------------------------ *)
(* E16: online migration under a request stream                        *)

let e16_online () =
  header "E16 [extension]  online migration (requests arriving mid-flight)";
  Printf.printf "%10s %9s | %7s %8s %8s %10s\n" "requests" "arrival"
    "rounds" "replans" "moves" "p50 latcy";
  List.iter
    (fun (n_req, gap) ->
      let rng = rng_of (n_req + gap) in
      let n_disks = 16 and n_items = 400 in
      let caps = Array.init n_disks (fun i -> 1 + (i mod 3)) in
      let disks =
        Array.mapi (fun id cap -> Storsim.Disk.make ~id ~cap ()) caps
      in
      let before =
        Storsim.Placement.create ~n_items (fun _ ->
            Random.State.int rng n_disks)
      in
      let cluster = Storsim.Cluster.create ~disks ~placement:before in
      let requests =
        List.init n_req (fun k ->
            {
              Storsim.Online.at_round = k * gap;
              moves =
                List.init 25 (fun _ ->
                    ( Random.State.int rng n_items,
                      Random.State.int rng n_disks ))
                |> List.fold_left
                     (fun acc (i, d) ->
                       (i, d) :: List.filter (fun (j, _) -> j <> i) acc)
                     [];
            })
      in
      let report =
        Storsim.Online.run cluster ~requests ~plan:(M.plan ~rng M.Auto)
      in
      let lat = Array.copy report.Storsim.Online.latencies in
      Array.sort compare lat;
      Printf.printf "%10d %9d | %7d %8d %8d %10d\n" n_req gap
        report.Storsim.Online.rounds report.Storsim.Online.replans
        report.Storsim.Online.items_moved
        (if Array.length lat = 0 then 0 else lat.(Array.length lat / 2)))
    [ (1, 0); (4, 2); (4, 8); (12, 2); (12, 6) ]

(* ------------------------------------------------------------------ *)
(* E17: non-uniform item sizes                                         *)

let e17_sizes () =
  header "E17 [extension]  non-uniform item sizes";
  Printf.printf
    "the paper's unit-size model vs Pareto-sized items; the size-aware\n\
     round rebalancer swaps parallel items between rounds\n\n";
  Printf.printf "%6s %7s | %10s %10s %8s | %10s\n" "disks" "items" "naive"
    "balanced" "swaps" "async";
  List.iter
    (fun (n, m_items, alpha) ->
      let rng = rng_of (n + m_items) in
      let caps = Array.init n (fun i -> 1 + (i mod 4)) in
      let disks =
        Array.mapi (fun id cap -> Storsim.Disk.make ~id ~cap ()) caps
      in
      let g = Multigraph.create ~n () in
      let sources = Array.make m_items 0 and targets = Array.make m_items 0 in
      for e = 0 to m_items - 1 do
        let u = Random.State.int rng n in
        let rec pick () =
          let v = Random.State.int rng n in
          if v = u then pick () else v
        in
        let v = pick () in
        ignore (Multigraph.add_edge g u v);
        sources.(e) <- u;
        targets.(e) <- v
      done;
      let inst = M.Instance.create g ~caps in
      let job =
        {
          Storsim.Cluster.instance = inst;
          items = Array.init m_items Fun.id;
          sources;
          targets;
        }
      in
      let sizes = Workloads.Demand.sizes rng ~n:m_items ~alpha in
      let sched = M.plan ~rng M.Hetero inst in
      let naive = Storsim.Bandwidth.schedule_duration ~disks ~sizes job sched in
      let _, st = Storsim.Size_balance.optimize ~disks ~sizes job sched in
      let async_report =
        Storsim.Async_exec.run ~disks ~sizes job
          (Storsim.Async_exec.By_schedule sched)
      in
      Printf.printf "%6d %7d | %10.1f %10.1f %8d | %10.1f\n" n m_items naive
        st.Storsim.Size_balance.duration_after st.Storsim.Size_balance.swaps
        async_report.Storsim.Async_exec.makespan)
    [ (8, 100, 1.5); (16, 400, 1.5); (16, 400, 1.1); (32, 1200, 1.3) ]

(* ------------------------------------------------------------------ *)
(* E18: migration-aware layouts                                        *)

let e18_layout () =
  header "E18 [extension]  migration-aware rebalancing (move less, stay close)";
  Printf.printf
    "after a demand shift: from-scratch layout vs incremental layout\n\n";
  Printf.printf "%10s | %8s %10s | %8s %10s\n" "tolerance" "moves"
    "imbalance" "moves" "imbalance";
  Printf.printf "%10s | %19s | %19s\n" "" "from scratch" "incremental";
  let rng = rng_of 2025 in
  let n_items = 2000 and weights = Array.init 16 (fun i -> float_of_int (1 + (i mod 3))) in
  let demands = Workloads.Demand.demands rng ~n:n_items ~s:0.5 in
  let before = Workloads.Layout.balance ~demands ~weights in
  let demands' = Workloads.Demand.shift rng ~fraction:0.4 demands in
  let full = Workloads.Layout.balance ~demands:demands' ~weights in
  let full_moves =
    List.length (Storsim.Placement.diff before full)
  in
  let full_imb = Workloads.Layout.imbalance ~demands:demands' ~weights full in
  List.iter
    (fun tolerance ->
      let incr =
        Workloads.Layout.rebalance_incremental ~demands:demands' ~weights
          ~current:before ~tolerance
      in
      Printf.printf "%10.2f | %8d %10.3f | %8d %10.3f\n" tolerance full_moves
        full_imb
        (List.length (Storsim.Placement.diff before incr))
        (Workloads.Layout.imbalance ~demands:demands' ~weights incr))
    [ 0.02; 0.05; 0.10; 0.25 ]

(* ------------------------------------------------------------------ *)
(* E19: flaky transport — retries and replans                          *)

let e19_flaky () =
  header "E19 [extension]  flaky transport: retry passes vs failure rate";
  Printf.printf "%8s | %8s %8s %10s %12s   (mean of 5 seeds)\n" "p(fail)"
    "passes" "rounds" "wall" "retried";
  List.iter
    (fun rate ->
      let passes = ref [] and rounds = ref [] and wall = ref [] and retried = ref [] in
      for seed = 1 to 5 do
        let rng = rng_of ((seed * 100) + int_of_float (rate *. 100.0)) in
        let sc =
          Workloads.Scenarios.rebalance rng ~n_disks:12 ~n_items:400
            ~caps:[ 2; 3 ] ()
        in
        let rep =
          Storsim.Fault.run_with_transfer_failures rng
            sc.Workloads.Scenarios.cluster
            ~target:sc.Workloads.Scenarios.target
            ~plan:(M.plan ~rng M.Auto)
            { Storsim.Fault.failure_rate = rate; max_attempt_passes = 100 }
        in
        passes := float_of_int rep.Storsim.Fault.passes :: !passes;
        rounds := float_of_int rep.Storsim.Fault.total_rounds :: !rounds;
        wall := rep.Storsim.Fault.wall_time :: !wall;
        retried := float_of_int rep.Storsim.Fault.failed_transfers :: !retried
      done;
      Printf.printf "%8.2f | %8.1f %8.1f %10.1f %12.1f\n" rate
        (Mgraph.Stats.mean !passes) (Mgraph.Stats.mean !rounds)
        (Mgraph.Stats.mean !wall) (Mgraph.Stats.mean !retried))
    [ 0.0; 0.05; 0.15; 0.30; 0.50 ]

(* ------------------------------------------------------------------ *)
(* E20: the dedicated-network assumption, stress-tested               *)

let e20_network () =
  header "E20 [extension]  oversubscribed fabric: where Fig. 2's speedup dies";
  Printf.printf
    "triangle M=16: c=2 beats c=1 by 1.5x under full bisection (the\n\
     paper's assumption); a saturating core erodes the advantage\n\n";
  Printf.printf "%12s | %10s %10s | %8s\n" "core streams" "c=1 time"
    "c=2 time" "speedup";
  let m = 16 in
  let g = Mgraph.Graph_gen.triangle_stack m in
  let run cap network =
    let inst = M.Instance.uniform g ~cap in
    let sched = M.plan ~rng:(rng_of 1) M.Auto inst in
    let disks = Array.init 3 (fun id -> Storsim.Disk.make ~id ~cap ()) in
    let job =
      {
        Storsim.Cluster.instance = inst;
        items = Array.init (3 * m) Fun.id;
        sources = Array.init (3 * m) (fun e -> fst (Multigraph.endpoints g e));
        targets = Array.init (3 * m) (fun e -> snd (Multigraph.endpoints g e));
      }
    in
    Storsim.Bandwidth.schedule_duration ~disks ?network job sched
  in
  List.iter
    (fun core ->
      let network =
        match core with
        | None -> None
        | Some c -> Some (Storsim.Network.oversubscribed ~core_streams:c)
      in
      let t1 = run 1 network and t2 = run 2 network in
      Printf.printf "%12s | %10.0f %10.0f | %7.2fx\n"
        (match core with None -> "unlimited" | Some c -> Printf.sprintf "%.1f" c)
        t1 t2 (t1 /. t2))
    [ None; Some 3.0; Some 2.0; Some 1.5; Some 1.0 ]

(* ------------------------------------------------------------------ *)
(* E21: restriping a multimedia array                                  *)

let e21_restripe () =
  header "E21 [extension]  restriping after expansion (staggered striping)";
  Printf.printf
    "8 -> 12 disks, 50 objects x 8 blocks: full restripe vs minimal move\n\n";
  Printf.printf "%10s | %8s %8s %8s %10s\n" "mode" "moves" "lb" "rounds"
    "wall";
  List.iter
    (fun (label, mode) ->
      let sc =
        Workloads.Scenarios.restripe (rng_of 11) ~n_old:8 ~n_new:4
          ~n_objects:50 ~blocks_per_object:8 ~mode ()
      in
      let job =
        Storsim.Cluster.plan_reconfiguration sc.Workloads.Scenarios.cluster
          ~target:sc.Workloads.Scenarios.target
      in
      let inst = job.Storsim.Cluster.instance in
      let lb = M.Lower_bounds.lower_bound ~rng:(rng_of 12) inst in
      let report =
        Storsim.Simulator.run sc.Workloads.Scenarios.cluster
          ~target:sc.Workloads.Scenarios.target
          ~plan:(M.plan ~rng:(rng_of 13) M.Auto)
      in
      Printf.printf "%10s | %8d %8d %8d %10.1f\n" label
        report.Storsim.Simulator.items_moved lb report.Storsim.Simulator.rounds
        report.Storsim.Simulator.wall_time)
    [ ("full", `Full); ("minimal", `Minimal) ]

(* ------------------------------------------------------------------ *)
(* E22: orbit-driven Phase 1 vs the Kempe engine                       *)

let e22_orbit_engine () =
  header "E22 [fidelity]  orbit-driven Phase 1 (Section V-C1) vs Kempe engine";
  Printf.printf
    "same instances, two realizations of the paper's Phase 1: the\n\
     structurally faithful orbit/witness loop vs the production Kempe\n\
     engine (mean over 5 seeds)\n\n";
  Printf.printf "%6s %6s | %7s | %8s %8s | %10s %10s\n" "n" "m" "LB"
    "orbit" "kempe" "witnesses" "growths";
  List.iter
    (fun (n, m) ->
      let lb = ref 0.0 and po = ref 0.0 and pk = ref 0.0 in
      let wit = ref 0.0 and gro = ref 0.0 in
      for seed = 1 to 5 do
        let rng = rng_of ((n * 37) + seed) in
        let g = Mgraph.Graph_gen.gnm rng ~n ~m in
        let inst = M.Instance.random_caps rng g ~choices:[ 1; 2; 3 ] in
        let _, os = M.Orbits.color_via_orbits ~rng inst in
        let _, hs = M.Hetero_coloring.schedule_stats ~rng inst in
        lb := !lb +. float_of_int hs.M.Hetero_coloring.lb;
        po := !po +. float_of_int os.M.Orbits.palette;
        pk := !pk +. float_of_int hs.M.Hetero_coloring.palette;
        wit :=
          !wit
          +. float_of_int
               (os.M.Orbits.witnesses_delta + os.M.Orbits.witnesses_gamma);
        gro := !gro +. float_of_int os.M.Orbits.orbit_growths
      done;
      Printf.printf "%6d %6d | %7.1f | %8.1f %8.1f | %10.1f %10.1f\n" n m
        (!lb /. 5.0) (!po /. 5.0) (!pk /. 5.0) (!wit /. 5.0) (!gro /. 5.0))
    [ (8, 40); (12, 100); (16, 200); (24, 400) ];
  (* adversarial: the clique stack where the certified bound is not
     quite reachable and witnesses must fire *)
  Printf.printf "\nadversarial K5 x 12 (c = 1):\n";
  let g = Multigraph.create ~n:5 () in
  for _ = 1 to 12 do
    for u = 0 to 4 do
      for v = u + 1 to 4 do
        ignore (Multigraph.add_edge g u v)
      done
    done
  done;
  let inst = M.Instance.uniform g ~cap:1 in
  let rng = rng_of 99 in
  let _, os = M.Orbits.color_via_orbits ~rng inst in
  let _, hs = M.Hetero_coloring.schedule_stats ~rng inst in
  Printf.printf
    "LB %d | orbit engine %d (Δ-wit %d, Γ-wit %d, growths %d, max orbit %d) | kempe %d\n"
    hs.M.Hetero_coloring.lb os.M.Orbits.palette os.M.Orbits.witnesses_delta
    os.M.Orbits.witnesses_gamma os.M.Orbits.orbit_growths
    os.M.Orbits.largest_orbit hs.M.Hetero_coloring.palette

(* ------------------------------------------------------------------ *)
(* E24: maintenance windows — recovered demand vs round budget         *)

let e24_deadline () =
  header "E24 [extension]  deadline windows: demand recovered per round";
  Printf.printf
    "rebalance needing R rounds, executed in a window of K rounds:\n\
     fraction of shifted demand recovered (weights = item demand)\n\n";
  let rng = rng_of 55 in
  let sc =
    Workloads.Scenarios.rebalance rng ~n_disks:16 ~n_items:800
      ~caps:[ 1; 2; 3 ] ()
  in
  let job =
    Storsim.Cluster.plan_reconfiguration sc.Workloads.Scenarios.cluster
      ~target:sc.Workloads.Scenarios.target
  in
  let inst = job.Storsim.Cluster.instance in
  let demands = sc.Workloads.Scenarios.demands in
  let weights e = demands.(job.Storsim.Cluster.items.(e)) in
  let full = M.Hetero_coloring.schedule ~rng inst in
  let total_rounds = M.Schedule.n_rounds full in
  Printf.printf "full migration: %d moves, %d rounds\n\n"
    (M.Instance.n_items inst) total_rounds;
  Printf.printf "%8s | %8s %10s %12s\n" "budget" "moved" "weight" "recovered";
  List.iter
    (fun k ->
      let budget = max 1 (k * total_rounds / 4) in
      let r = M.Deadline.plan_window ~rng:(rng_of 56) ~weights inst ~budget in
      Printf.printf "%8d | %8d %10.4f %11.1f%%\n" budget
        (List.length r.M.Deadline.moved) r.M.Deadline.moved_weight
        (100.0 *. r.M.Deadline.moved_weight /. r.M.Deadline.total_weight))
    [ 1; 2; 3; 4 ]

(* ------------------------------------------------------------------ *)
(* E25: structured instrumentation — where planning time goes          *)

let e25_metrics () =
  header "E25 [metrics]  per-phase timings and counters (Migration.Instr)";
  Printf.printf
    "pipeline auto on a mixed instance; spans aggregate every\n\
     component's solver run\n\n";
  let g = Mgraph.Graph_gen.gnm (rng_of 57) ~n:96 ~m:6000 in
  let inst = M.Instance.random_caps (rng_of 58) g ~choices:[ 1; 2; 3; 4 ] in
  M.Instr.reset ();
  let sched, report =
    M.Pipeline.solve ~rng:(rng_of 59) ~choose:M.Pipeline.auto_choose inst
  in
  fail_invalid inst sched "pipeline auto";
  Printf.printf "%d disks, %d items -> %d rounds over %d component(s)\n\n"
    (M.Instance.n_disks inst) (M.Instance.n_items inst)
    (M.Schedule.n_rounds sched) report.M.Pipeline.components;
  Format.printf "%a@." M.Instr.pp_table (M.Instr.snapshot ())

(* ------------------------------------------------------------------ *)
(* E26 (CLI key "e9"): parallel scaling of the component pipeline      *)

let wall_clock f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

(* [components] disjoint G(n,m) blocks in one instance: the pipeline
   decomposes them back and solves each on its own worker domain. *)
let parallel_instance ~components ~n ~m =
  let g = Multigraph.create ~n:(components * n) () in
  for c = 0 to components - 1 do
    let gc = Mgraph.Graph_gen.gnm (rng_of (900 + c)) ~n ~m in
    Multigraph.iter_edges gc (fun { Multigraph.u; v; _ } ->
        ignore (Multigraph.add_edge g ((c * n) + u) ((c * n) + v)))
  done;
  M.Instance.random_caps (rng_of 899) g ~choices:[ 1; 2; 3; 5 ]

(* stashed by e9 for the --json writer *)
let parallel_detail :
    ((int * float) list * int * int * int) option ref =
  ref None

let e9_parallel () =
  header "E9 [parallel]  domain-parallel pipeline scaling";
  let components = 8 and n = 64 and m = 4000 in
  let inst = parallel_instance ~components ~n ~m in
  let solve jobs =
    M.Pipeline.solve ~rng:(rng_of 901) ~jobs ~choose:M.Pipeline.auto_choose
      inst
  in
  (* warm up allocators and code paths before timing *)
  ignore (solve 1);
  let runs =
    List.map
      (fun jobs ->
        let (sched, report), t = wall_clock (fun () -> solve jobs) in
        (jobs, sched, report, t))
      [ 1; 2; 4 ]
  in
  let base_sched, base_t =
    match runs with
    | (1, s, _, t) :: _ -> (M.Schedule.to_string s, t)
    | _ -> assert false
  in
  List.iter
    (fun (jobs, sched, _, _) ->
      fail_invalid inst sched "e9 parallel";
      if M.Schedule.to_string sched <> base_sched then
        failwith
          (Printf.sprintf "e9: schedule at --jobs %d differs from --jobs 1"
             jobs))
    runs;
  let rounds, comps =
    match runs with
    | (_, s, r, _) :: _ -> (M.Schedule.n_rounds s, r.M.Pipeline.components)
    | _ -> assert false
  in
  let lb = M.Lower_bounds.lower_bound ~rng:(rng_of 902) inst in
  Printf.printf
    "%d components x (n=%d, m=%d); %d rounds, lower bound %d\n\
     schedules bit-identical across jobs; recommended domains here: %d\n\n"
    components n m rounds lb
    (Exec.default_jobs ());
  Printf.printf "%6s %10s %9s\n" "jobs" "wall (s)" "speedup";
  List.iter
    (fun (jobs, _, _, t) ->
      Printf.printf "%6d %10.3f %8.2fx\n" jobs t (base_t /. t))
    runs;
  parallel_detail :=
    Some (List.map (fun (j, _, _, t) -> (j, t)) runs, rounds, lb, comps)

(* ------------------------------------------------------------------ *)
(* E27 (CLI key "e11"): flat-core scale — wall and allocation per      *)
(* solver on the "huge" family, plus even-opt intra-instance scaling   *)

(* stashed by e11 for the --json writer:
   (edges,
    solver rows (name, wall_s, rounds, bytes_per_edge),
    even-opt runs (jobs, wall_s)) *)
let huge_detail :
    (int * (string * float * int * float) list * (int * float) list) option
    ref =
  ref None

let e11_huge () =
  header "E11 [huge]  flat-core scale: wall time and allocation per solver";
  let fam =
    match Gen.family_of_string "huge" with
    | Some f -> f
    | None -> failwith "e11: gen family \"huge\" missing"
  in
  let inst = Gen.instance fam ~seed:1 ~size:112 in
  let m = M.Instance.n_items inst in
  Printf.printf "huge seed 1 size 112: %d disks, %d items, all-even caps\n\n"
    (M.Instance.n_disks inst) m;
  let measure name solve =
    (* Gc.allocated_bytes counts every word this domain ever allocated,
       so the delta is total allocation — what the arenas amortize away
       shows up as a smaller delta, which is exactly what the gate's
       bytes-per-edge budget pins down *)
    let a0 = Gc.allocated_bytes () in
    let sched, t = wall_clock solve in
    let bytes = Gc.allocated_bytes () -. a0 in
    fail_invalid inst sched ("e11 " ^ name);
    (name, sched, t, bytes /. float_of_int m)
  in
  let rows =
    [
      measure "greedy" (fun () -> M.plan ~rng:(rng_of 911) M.Greedy inst);
      measure "hetero" (fun () -> M.plan ~rng:(rng_of 912) M.Hetero inst);
      measure "even-opt" (fun () -> M.Even_optimal.schedule ~jobs:1 inst);
    ]
  in
  Printf.printf "%10s %10s %7s %12s\n" "solver" "wall (s)" "rounds"
    "bytes/item";
  List.iter
    (fun (name, sched, t, bpe) ->
      Printf.printf "%10s %10.3f %7d %12.1f\n" name t
        (M.Schedule.n_rounds sched) bpe)
    rows;
  (* even-opt parallel scaling within ONE instance: each round's
     degree-constrained matching fragments into thousands of components
     solved on the worker pool, so speedup needs no multi-component
     instance.  jobs=1 reuses the row above as the base. *)
  let base_sched, base_t =
    match rows with
    | [ _; _; (_, s, t, _) ] -> (M.Schedule.to_string s, t)
    | _ -> assert false
  in
  let runs =
    (1, base_t)
    :: List.map
         (fun jobs ->
           let sched, t =
             wall_clock (fun () -> M.Even_optimal.schedule ~jobs inst)
           in
           if M.Schedule.to_string sched <> base_sched then
             failwith
               (Printf.sprintf
                  "e11: even-opt schedule at jobs %d differs from jobs 1" jobs);
           (jobs, t))
         [ 2; 4 ]
  in
  Printf.printf "\neven-opt scaling (schedules bit-identical; %d domains \
                 recommended here):\n"
    (Exec.default_jobs ());
  Printf.printf "%6s %10s %9s\n" "jobs" "wall (s)" "speedup";
  List.iter
    (fun (jobs, t) ->
      Printf.printf "%6d %10.3f %8.2fx\n" jobs t (base_t /. t))
    runs;
  huge_detail :=
    Some
      ( m,
        List.map
          (fun (name, sched, t, bpe) ->
            (name, t, M.Schedule.n_rounds sched, bpe))
          rows,
        runs )

(* ------------------------------------------------------------------ *)
(* E12 (CLI key "serve"): the streaming service end to end — Zipf     *)
(* demand-shift re-layouts admitted, epoch-batched, warm-replanned,   *)
(* executed, and certified while the clock runs                       *)

(* stashed by serve for the --json writer:
   (items, transfers, p50, p99, certify seconds,
    runs (jobs, wall_s, items_per_sec)) *)
let serve_detail :
    (int * int * int * int * float * (int * float * float) list) option ref =
  ref None

let e12_serve () =
  header "E12 [serve]  streaming service: epoch-batched Zipf demand shifts";
  (* the demand vector follows the Zipf(1.1) popularity law of the
     paper's million-user workloads, aggregated over the object set *)
  let n_disks = 24 and n_items = 40_000 in
  let rng = rng_of 921 in
  let caps = Array.init n_disks (fun i -> 2 + (i mod 4)) in
  let demands = Workloads.Demand.demands rng ~n:n_items ~s:1.1 in
  let weights = Array.map float_of_int caps in
  let placement =
    Storsim.Placement.to_array (Workloads.Layout.balance ~demands ~weights)
  in
  let cluster = { Service.caps; placement; demands } in
  let requests =
    [
      { Service.at = 0; tenant = 0; trigger = Service.Demand_shift { fraction = 0.08 } };
      { Service.at = 50; tenant = 0; trigger = Service.Add_disk { cap = 4 } };
      { Service.at = 120; tenant = 0; trigger = Service.Demand_shift { fraction = 0.05 } };
      { Service.at = 200; tenant = 0; trigger = Service.Remove_disk { disk = 3 } };
    ]
  in
  Printf.printf
    "%d disks, %d items, Zipf(1.1) demands; 2 demand shifts + 1 add + 1 \
     drain\n\n"
    n_disks n_items;
  let serve jobs =
    Service.run ~jobs ~epoch_rounds:64 ~rng_seed:922 cluster ~requests ()
  in
  ignore (serve 1);
  (* warm up allocators and code paths before timing *)
  let runs =
    List.map
      (fun jobs ->
        let r, t = wall_clock (fun () -> serve jobs) in
        (jobs, r, t))
      [ 1; 2; 4 ]
  in
  let render (r : Service.report) =
    Format.asprintf "%a@.%a@." Service.pp_report r Service.pp_statuses r
  in
  let base_report =
    match runs with (1, r, _) :: _ -> render r | _ -> assert false
  in
  List.iter
    (fun (jobs, r, _) ->
      if render r <> base_report then
        failwith
          (Printf.sprintf "e12: service report at --jobs %d differs from \
                           --jobs 1" jobs))
    runs;
  let r0, base_t =
    match runs with (1, r, t) :: _ -> (r, t) | _ -> assert false
  in
  let verdict, certify_t =
    wall_clock (fun () -> M.Certify.certify_service r0.Service.execution)
  in
  if not (M.Certify.service_ok verdict) then
    failwith "e12: concatenated flight log failed certification";
  Printf.printf
    "%d epochs, %d global rounds, %d transfers; request latency p50=%d \
     p99=%d rounds\ncertified in %.3f s; reports bit-identical across jobs\n\n"
    r0.Service.epochs r0.Service.total_rounds r0.Service.transfers
    r0.Service.p50 r0.Service.p99 certify_t;
  Printf.printf "%6s %10s %12s %9s\n" "jobs" "wall (s)" "items/sec" "speedup";
  let run_rows =
    List.map
      (fun (jobs, (r : Service.report), t) ->
        let tput = float_of_int r.Service.transfers /. t in
        Printf.printf "%6d %10.3f %12.0f %8.2fx\n" jobs t tput (base_t /. t);
        (jobs, t, tput))
      runs
  in
  serve_detail :=
    Some
      ( n_items, r0.Service.transfers, r0.Service.p50, r0.Service.p99,
        certify_t, run_rows )

(* ------------------------------------------------------------------ *)
(* E10 (CLI key "engine"): incremental re-planning vs the oracle       *)

(* stashed by the engine experiment for the --json writer:
   (rate, t_incremental, t_scratch, replans_inc, replans_scratch,
    rounds_inc, rounds_scratch) *)
let engine_detail :
    (float * float * float * int * int * int * int) list option ref =
  ref None

let e10_engine () =
  header "E10 [engine]  incremental re-planning vs re-solve-from-scratch";
  Printf.printf
    "closed-loop execution under seeded transient faults: warm-started\n\
     incremental replanning (only fault-dirtied components re-solve) vs\n\
     an oracle that re-solves the whole residual at every replan\n\n";
  let components = 6 and n = 32 and m = 1200 in
  let inst = parallel_instance ~components ~n ~m in
  Printf.printf "%d components x (n=%d, m=%d) = %d items\n\n" components n m
    (M.Instance.n_items inst);
  Printf.printf "%8s | %9s %8s %7s | %10s %8s %7s | %8s\n" "p(fail)"
    "incr (s)" "replans" "rounds" "scratch(s)" "replans" "rounds" "speedup";
  let rows =
    List.map
      (fun rate ->
        let run incremental =
          (* same seeds both ways: identical fault draws, so the only
             difference is how much re-planning each replan does.  Two
             mid-flight slowdowns land in two of the six components —
             the warm start re-solves those components only, the
             oracle re-solves all six every time. *)
          let policy =
            Storsim.Fault.engine_policy ~fault_rate:rate
              ~slowdowns:[ (5, 3); (25, n + 3) ]
              ~seed:7 ()
          in
          let o, t =
            wall_clock (fun () ->
                M.Engine.run ~rng:(rng_of 903) ~incremental ~policy inst)
          in
          let v = M.Certify.certify_execution o.M.Engine.execution in
          if not (M.Certify.exec_ok v) then
            failwith "e10 engine: execution failed certification";
          (o, t)
        in
        let oi, ti = run true in
        let os, ts = run false in
        Printf.printf
          "%8.2f | %9.3f %8d %7d | %10.3f %8d %7d | %7.2fx\n" rate ti
          oi.M.Engine.replans oi.M.Engine.total_rounds ts
          os.M.Engine.replans os.M.Engine.total_rounds
          (if ti > 0.0 then ts /. ti else 1.0);
        ( rate, ti, ts, oi.M.Engine.replans, os.M.Engine.replans,
          oi.M.Engine.total_rounds, os.M.Engine.total_rounds ))
      [ 0.0; 0.01; 0.05 ]
  in
  engine_detail := Some rows

(* ------------------------------------------------------------------ *)
(* E13 (CLI key "distributed"): coordinator/worker execution vs the    *)
(* in-process engine                                                   *)

(* stashed by the distributed experiment for the --json writer:
   (transfers, rounds, engine wall, [(workers, wall)], identical) *)
let dist_detail : (int * int * float * (int * float) list * bool) option ref =
  ref None

let e13_distributed () =
  header "E13 [distributed]  coordinator/worker execution vs in-process";
  Printf.printf
    "the certified plan driven round by round across N real worker\n\
     processes over socketpairs, every barrier a durable journal\n\
     commit — what the protocol and fsync discipline cost over the\n\
     in-process engine, with the flight log required byte-identical\n\n";
  let components = 4 and n = 24 and m = 600 in
  let inst = parallel_instance ~components ~n ~m in
  let seed = 1309 in
  Printf.printf "%d components x (n=%d, m=%d) = %d items\n\n" components n m
    (M.Instance.n_items inst);
  (* the distributed runs fork, and Unix.fork is forbidden once any
     domain has ever been spawned in this process — so they run before
     the in-process reference, and the reference plans with jobs:1
     (the schedule is byte-identical at any jobs) *)
  let state_dir_of workers =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "bench_dist.%d.w%d" (Unix.getpid ()) workers)
  in
  let dist_runs =
    List.map
      (fun workers ->
        let state_dir = state_dir_of workers in
        let r, t =
          wall_clock (fun () ->
              Distproto.Runner.run ~workers ~seed ~state_dir inst)
        in
        let log =
          match r with
          | Ok (Distproto.Runner.Completed o) ->
              Some
                (M.Certify.execution_to_string o.Distproto.Runner.execution)
          | Ok (Distproto.Runner.Interrupted _) | Error _ -> None
        in
        (workers, t, log))
      [ 1; 2; 4 ]
  in
  let reference, engine_t =
    wall_clock (fun () ->
        M.Engine.run
          ~rng:(Distproto.Runner.plan_rng seed)
          ~jobs:1 ~policy:M.Engine.no_faults inst)
  in
  let reference_log =
    M.Certify.execution_to_string reference.M.Engine.execution
  in
  Printf.printf "in-process engine: %d rounds in %.3f s\n\n"
    reference.M.Engine.total_rounds engine_t;
  Printf.printf "%8s %10s %10s  %s\n" "workers" "wall (s)" "overhead"
    "flight log";
  let identical = ref true in
  let runs =
    List.map
      (fun (workers, t, log) ->
        let same = log = Some reference_log in
        if not same then identical := false;
        Printf.printf "%8d %10.3f %9.1fx  %s\n" workers t
          (if engine_t > 0.0 then t /. engine_t else 1.0)
          (if same then "identical" else "DIVERGED");
        (workers, t))
      dist_runs
  in
  (* best-effort scrub of the journals — a leftover state dir must
     never make the next bench run resume instead of execute *)
  (try
     let rm_rf dir =
       if Sys.file_exists dir then begin
         Array.iter
           (fun f -> Sys.remove (Filename.concat dir f))
           (Sys.readdir dir);
         Sys.rmdir dir
       end
     in
     List.iter (fun w -> rm_rf (state_dir_of w)) [ 1; 2; 4 ]
   with Sys_error _ -> ());
  if not !identical then
    failwith "e13: distributed flight log diverged from in-process engine";
  dist_detail :=
    Some
      ( M.Instance.n_items inst, reference.M.Engine.total_rounds, engine_t,
        runs, !identical )

(* ------------------------------------------------------------------ *)
(* E14 (CLI key "sla"): weighted group completion vs the               *)
(* round-optimal baseline                                              *)

(* stashed by the SLA experiment for the --json writer:
   (groups, items, per-variant (name, rounds, weighted_sum, p99, wall),
    identical) *)
let sla_detail :
    (int * int * (string * int * int * int * float) list * bool) option ref =
  ref None

let e14_sla () =
  header "E14 [sla]  weighted group completion vs the round-optimal baseline";
  let fam =
    match Gen.family_of_string "tenants" with
    | Some f -> f
    | None -> failwith "e14: tenants family not registered"
  in
  let inst = Gen.instance fam ~seed:941 ~size:64 in
  let k = M.Instance.n_groups inst in
  let m = M.Instance.n_items inst in
  Printf.printf "tenants family, seed 941: %d items, %d groups, weights %s\n\n"
    m k
    (String.concat ","
       (Array.to_list (Array.map string_of_int (M.Instance.weights inst))));
  (* the round-optimal baseline: the auto pipeline, blind to groups *)
  let plan jobs =
    fst
      (M.Pipeline.solve ~rng:(rng_of 942) ~jobs ~choose:M.Pipeline.auto_choose
         inst)
  in
  ignore (plan 1);
  (* warm up before timing *)
  let certify name ~solver ~reordered sched =
    fail_invalid inst sched ("e14 " ^ name);
    let v =
      M.Certify.check_sla inst sched (M.Objective.claim ~solver ~reordered inst sched)
    in
    if not (M.Certify.sla_ok v) then
      failwith (Printf.sprintf "e14: %s failed SLA certification" name)
  in
  let stats sched =
    let _, p99 = M.Objective.completion_percentiles inst sched in
    (M.Schedule.n_rounds sched, M.Objective.weighted_sum inst sched, p99)
  in
  let base, base_t = wall_clock (fun () -> plan 1) in
  certify "baseline" ~solver:"auto" ~reordered:false base;
  (* the post-pass must be a pure round permutation at every --jobs:
     byte-compare the reordered schedule across worker counts *)
  let reordered, reorder_t =
    wall_clock (fun () -> M.Objective.reorder inst (plan 1))
  in
  certify "reordered" ~solver:"auto" ~reordered:true reordered;
  let identical =
    List.for_all
      (fun jobs ->
        M.Schedule.to_string (M.Objective.reorder inst (plan jobs))
        = M.Schedule.to_string reordered)
      [ 1; 2; 4 ]
  in
  if not identical then
    failwith "e14: reordered schedule differs across --jobs";
  let greedy_sched, greedy_t =
    wall_clock (fun () ->
        M.Objective.reorder inst
          (M.Solver.solve ~rng:(rng_of 943) M.Objective.sla_greedy inst))
  in
  certify "sla-greedy" ~solver:"sla-greedy" ~reordered:true greedy_sched;
  let br, bw, bp = stats base in
  if M.Schedule.n_rounds reordered <> br then
    failwith "e14: reorder changed the makespan";
  let variants =
    [
      ("baseline", base, base_t);
      ("reordered", reordered, base_t +. reorder_t);
      ("sla-greedy", greedy_sched, greedy_t);
    ]
  in
  Printf.printf "%12s %8s %14s %6s %10s\n" "variant" "rounds" "weighted sum"
    "p99" "wall (s)";
  let rows =
    List.map
      (fun (name, sched, t) ->
        let rounds, wsum, p99 = stats sched in
        Printf.printf "%12s %8d %14d %6d %10.3f\n" name rounds wsum p99 t;
        (name, rounds, wsum, p99, t))
      variants
  in
  let gr, gw, gp =
    match rows with
    | [ _; _; (_, r, w, p, _) ] -> (r, w, p)
    | _ -> assert false
  in
  Printf.printf
    "\nprice of fairness: %+d rounds for %+d weighted sum, p99 %d -> %d\n\
     reordered schedule bit-identical across jobs; all variants certified\n\n"
    (gr - br) (gw - bw) bp gp;
  sla_detail := Some (k, m, rows, identical)

let experiments =
  [
    ("fig1", e1_fig1);
    ("fig2", e2_fig2);
    ("thm41", e3_thm41);
    ("thm51", e4_thm51);
    ("baselines", e5_baselines);
    ("lb2", e6_lb2);
    ("runtime", e7_runtime);
    ("bechamel", e7_bechamel);
    ("scenarios", e8_scenarios);
    ("forwarding", e9_forwarding);
    ("halving", e10_halving);
    ("completion", e11_completion);
    ("space", e12_space);
    ("cloning", e13_cloning);
    ("ablations", e14_ablations);
    ("async", e15_async);
    ("online", e16_online);
    ("sizes", e17_sizes);
    ("layout", e18_layout);
    ("flaky", e19_flaky);
    ("network", e20_network);
    ("restripe", e21_restripe);
    ("orbits", e22_orbit_engine);
    ("deadline", e24_deadline);
    ("metrics", e25_metrics);
    ("e9", e9_parallel);
    ("e11", e11_huge);
    ("engine", e10_engine);
    ("serve", e12_serve);
    ("distributed", e13_distributed);
    ("sla", e14_sla);
  ]

(* --json: the perf-regression baseline.  Handwritten like
   Instr.to_json — the tree has no JSON dependency. *)
let write_json ~path timings =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"bench\": \"pr9\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"recommended_domains\": %d,\n" (Exec.default_jobs ()));
  Buffer.add_string buf "  \"experiments\": [\n";
  List.iteri
    (fun i (name, t) ->
      Buffer.add_string buf
        (Printf.sprintf "    { \"name\": %S, \"wall_s\": %.6f }%s\n" name t
           (if i = List.length timings - 1 then "" else ",")))
    timings;
  Buffer.add_string buf "  ]";
  (match !parallel_detail with
  | None -> ()
  | Some (runs, rounds, lb, components) ->
      Buffer.add_string buf ",\n  \"parallel\": {\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    \"components\": %d,\n    \"rounds\": %d,\n    \
            \"lower_bound\": %d,\n"
           components rounds lb);
      Buffer.add_string buf "    \"runs\": [\n";
      let base_t = match runs with (1, t) :: _ -> t | _ -> 1.0 in
      List.iteri
        (fun i (jobs, t) ->
          Buffer.add_string buf
            (Printf.sprintf
               "      { \"jobs\": %d, \"wall_s\": %.6f, \"speedup\": %.3f }%s\n"
               jobs t (base_t /. t)
               (if i = List.length runs - 1 then "" else ",")))
        runs;
      Buffer.add_string buf "    ],\n";
      Buffer.add_string buf "    \"identical_schedules\": true\n";
      Buffer.add_string buf "  }");
  (match !huge_detail with
  | None -> ()
  | Some (edges, solvers, runs) ->
      Buffer.add_string buf ",\n  \"huge\": {\n";
      Buffer.add_string buf (Printf.sprintf "    \"edges\": %d,\n" edges);
      Buffer.add_string buf "    \"solvers\": [\n";
      List.iteri
        (fun i (name, t, rounds, bpe) ->
          Buffer.add_string buf
            (Printf.sprintf
               "      { \"name\": %S, \"wall_s\": %.6f, \"rounds\": %d, \
                \"bytes_per_edge\": %.1f }%s\n"
               name t rounds bpe
               (if i = List.length solvers - 1 then "" else ",")))
        solvers;
      Buffer.add_string buf "    ],\n";
      Buffer.add_string buf "    \"runs\": [\n";
      let base_t = match runs with (1, t) :: _ -> t | _ -> 1.0 in
      List.iteri
        (fun i (jobs, t) ->
          Buffer.add_string buf
            (Printf.sprintf
               "      { \"jobs\": %d, \"wall_s\": %.6f, \"speedup\": %.3f }%s\n"
               jobs t (base_t /. t)
               (if i = List.length runs - 1 then "" else ",")))
        runs;
      Buffer.add_string buf "    ],\n";
      Buffer.add_string buf "    \"identical_schedules\": true\n";
      Buffer.add_string buf "  }");
  (match !serve_detail with
  | None -> ()
  | Some (items, transfers, p50, p99, certify_s, runs) ->
      Buffer.add_string buf ",\n  \"service\": {\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    \"items\": %d,\n    \"transfers\": %d,\n    \"p50\": %d,\n    \
            \"p99\": %d,\n    \"certify_s\": %.6f,\n"
           items transfers p50 p99 certify_s);
      Buffer.add_string buf "    \"runs\": [\n";
      List.iteri
        (fun i (jobs, t, tput) ->
          Buffer.add_string buf
            (Printf.sprintf
               "      { \"jobs\": %d, \"wall_s\": %.6f, \"items_per_sec\": \
                %.1f }%s\n"
               jobs t tput
               (if i = List.length runs - 1 then "" else ",")))
        runs;
      Buffer.add_string buf "    ],\n";
      Buffer.add_string buf "    \"identical_schedules\": true\n";
      Buffer.add_string buf "  }");
  (match !engine_detail with
  | None -> ()
  | Some rows ->
      Buffer.add_string buf ",\n  \"engine\": {\n    \"rates\": [\n";
      List.iteri
        (fun i (rate, ti, ts, ri, rs, rdi, rds) ->
          Buffer.add_string buf
            (Printf.sprintf
               "      { \"fault_rate\": %.3f, \"incremental_s\": %.6f, \
                \"scratch_s\": %.6f, \"replans_incremental\": %d, \
                \"replans_scratch\": %d, \"rounds_incremental\": %d, \
                \"rounds_scratch\": %d }%s\n"
               rate ti ts ri rs rdi rds
               (if i = List.length rows - 1 then "" else ",")))
        rows;
      Buffer.add_string buf "    ]\n  }");
  (match !dist_detail with
  | None -> ()
  | Some (transfers, rounds, engine_t, runs, identical) ->
      Buffer.add_string buf ",\n  \"distributed\": {\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    \"transfers\": %d,\n    \"rounds\": %d,\n    \
            \"engine_wall_s\": %.6f,\n"
           transfers rounds engine_t);
      Buffer.add_string buf "    \"runs\": [\n";
      List.iteri
        (fun i (workers, t) ->
          Buffer.add_string buf
            (Printf.sprintf
               "      { \"workers\": %d, \"wall_s\": %.6f, \"overhead\": \
                %.3f }%s\n"
               workers t
               (if engine_t > 0.0 then t /. engine_t else 1.0)
               (if i = List.length runs - 1 then "" else ",")))
        runs;
      Buffer.add_string buf "    ],\n";
      (* the gate's all-occurrences identical_schedules sweep picks
         this up: here it asserts the distributed flight log
         byte-matched the in-process engine at every worker count *)
      Buffer.add_string buf
        (Printf.sprintf "    \"identical_schedules\": %b\n  }" identical));
  (match !sla_detail with
  | None -> ()
  | Some (groups, items, rows, identical) ->
      Buffer.add_string buf ",\n  \"sla\": {\n";
      Buffer.add_string buf
        (Printf.sprintf "    \"groups\": %d,\n    \"items\": %d,\n" groups
           items);
      Buffer.add_string buf "    \"variants\": [\n";
      List.iteri
        (fun i (name, rounds, wsum, p99, t) ->
          Buffer.add_string buf
            (Printf.sprintf
               "      { \"name\": %S, \"rounds\": %d, \"weighted_sum\": %d, \
                \"p99_completion\": %d, \"wall_s\": %.6f }%s\n"
               name rounds wsum p99 t
               (if i = List.length rows - 1 then "" else ",")))
        rows;
      Buffer.add_string buf "    ],\n";
      (* the gate's all-occurrences identical_schedules sweep picks
         this up: the reordering post-pass was byte-identical at
         --jobs 1/2/4 *)
      Buffer.add_string buf
        (Printf.sprintf "    \"identical_schedules\": %b\n  }" identical));
  Buffer.add_string buf "\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\nwrote %s\n" path

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let json = List.mem "--json" args in
  (* --out FILE: where --json writes (default keeps the PR3 name the
     CI artifact pipeline already knows) *)
  let rec split_out acc out = function
    | "--out" :: path :: rest -> split_out acc (Some path) rest
    | "--out" :: [] ->
        prerr_endline "--out needs a file argument";
        exit 2
    | a :: rest -> split_out (a :: acc) out rest
    | [] -> (List.rev acc, out)
  in
  let args, out = split_out [] None args in
  let path = Option.value out ~default:"BENCH_pr3.json" in
  let names = List.filter (fun a -> a <> "--json") args in
  let requested =
    match names with [] -> List.map fst experiments | l -> l
  in
  (* Unix.fork is forbidden in this runtime once any domain has ever
     been spawned, and most experiments open Exec pools — the forking
     experiment must go first regardless of the order asked for *)
  let requested =
    if List.mem "distributed" requested then
      "distributed" :: List.filter (fun n -> n <> "distributed") requested
    else requested
  in
  let timings =
    List.map
      (fun name ->
        match List.assoc_opt name experiments with
        | Some f ->
            let (), t = wall_clock f in
            (name, t)
        | None ->
            Printf.eprintf "unknown experiment %S; available: %s\n" name
              (String.concat " " (List.map fst experiments));
            exit 2)
      requested
  in
  if json then write_json ~path timings
