(* gate — the CI perf-regression gate.

   Usage:  gate BASELINE.json CURRENT.json [--tolerance 0.25]

   Both files are outputs of `bench <experiments> --json` (see
   write_json in main.ml).  The gate fails (exit 1) when

     - an experiment present in both files got slower than
       (1 + tolerance) x its baseline wall time, or
     - the current run's "identical_schedules" assertion is false
       (the parallel pipeline produced a different schedule at some
       --jobs value — a determinism break, not a perf problem).

   Experiments with a baseline under [min_wall] seconds are reported
   but never gated: at that scale the numbers are timer noise.

   The parser is a string scraper matched to our own writer's output —
   the tree has no JSON dependency and does not want one for this. *)

let tolerance = ref 0.25
let min_wall = 0.05

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error msg ->
    Printf.eprintf "gate: %s\n" msg;
    exit 2

(* next occurrence of [needle] in [hay] at or after [from] *)
let find_from hay needle from =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go from

let scrape_string hay ~key ~from =
  (* "key": "value" *)
  let pat = Printf.sprintf "\"%s\": \"" key in
  match find_from hay pat from with
  | None -> None
  | Some i ->
      let start = i + String.length pat in
      let stop = String.index_from hay start '"' in
      Some (String.sub hay start (stop - start), stop)

let scrape_float hay ~key ~from =
  let pat = Printf.sprintf "\"%s\": " key in
  match find_from hay pat from with
  | None -> None
  | Some i ->
      let start = i + String.length pat in
      let stop = ref start in
      let n = String.length hay in
      while
        !stop < n
        && (match hay.[!stop] with
           | '0' .. '9' | '.' | '-' | 'e' | 'E' | '+' -> true
           | _ -> false)
      do
        incr stop
      done;
      float_of_string_opt (String.sub hay start (!stop - start))

(* every { "name": ..., "wall_s": ... } record of the experiments list *)
let experiments text =
  let rec go from acc =
    match scrape_string text ~key:"name" ~from with
    | None -> List.rev acc
    | Some (name, after) -> (
        match scrape_float text ~key:"wall_s" ~from:after with
        | None -> List.rev acc
        | Some w -> go (after + 1) ((name, w) :: acc))
  in
  go 0 []

let identical_schedules text =
  match find_from text "\"identical_schedules\": " 0 with
  | None -> None
  | Some i ->
      let start = i + String.length "\"identical_schedules\": " in
      Some (String.length text > start + 3 && String.sub text start 4 = "true")

let () =
  let positional = ref [] in
  let rec parse = function
    | "--tolerance" :: v :: rest ->
        (match float_of_string_opt v with
        | Some t when t > 0.0 -> tolerance := t
        | _ ->
            prerr_endline "gate: --tolerance needs a positive float";
            exit 2);
        parse rest
    | a :: rest ->
        positional := a :: !positional;
        parse rest
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let base_path, cur_path =
    match List.rev !positional with
    | [ b; c ] -> (b, c)
    | _ ->
        prerr_endline "usage: gate BASELINE.json CURRENT.json [--tolerance T]";
        exit 2
  in
  let base = read_file base_path and cur = read_file cur_path in
  let base_exps = experiments base and cur_exps = experiments cur in
  if base_exps = [] then begin
    Printf.eprintf "gate: no experiments found in %s\n" base_path;
    exit 2
  end;
  if cur_exps = [] then begin
    Printf.eprintf "gate: no experiments found in %s\n" cur_path;
    exit 2
  end;
  Printf.printf "perf gate: %s -> %s (tolerance %.0f%%)\n\n" base_path cur_path
    (100.0 *. !tolerance);
  Printf.printf "%-12s %10s %10s %8s  %s\n" "experiment" "base (s)" "cur (s)"
    "ratio" "verdict";
  let failed = ref false in
  List.iter
    (fun (name, b) ->
      match List.assoc_opt name cur_exps with
      | None -> Printf.printf "%-12s %10.3f %10s %8s  missing from current\n" name b "-" "-"
      | Some c ->
          let ratio = if b > 0.0 then c /. b else 1.0 in
          let verdict =
            if b < min_wall then "ok (below noise floor, not gated)"
            else if ratio > 1.0 +. !tolerance then begin
              failed := true;
              "REGRESSION"
            end
            else "ok"
          in
          Printf.printf "%-12s %10.3f %10.3f %7.2fx  %s\n" name b c ratio
            verdict)
    base_exps;
  (match identical_schedules cur with
  | Some true -> Printf.printf "\nidentical schedules across --jobs: yes\n"
  | Some false ->
      Printf.printf
        "\nidentical schedules across --jobs: NO — determinism break\n";
      failed := true
  | None -> ());
  if !failed then begin
    Printf.printf "\nGATE FAILED\n";
    exit 1
  end
  else Printf.printf "\ngate passed\n"
