(* gate — the CI perf-regression gate.

   Usage:  gate BASELINE.json CURRENT.json [--tolerance 0.25]

   Both files are outputs of `bench <experiments> --json` (see
   write_json in main.ml).  The gate fails (exit 1) when

     - an experiment present in both files got slower than
       (1 + tolerance) x its baseline wall time, or
     - any "identical_schedules" assertion in the current run is false
       (a planner produced a different schedule at some --jobs value —
       a determinism break, not a perf problem), or
     - the current run was taken on a machine with >= 4 recommended
       domains and a jobs=4 run (E9's multi-component pipeline or
       E11's intra-instance even-opt) fell below the hard speedup
       floor — parallelism that stops paying for itself is a
       regression even when single-job wall time holds, or
     - a solver in the current run's E11 "huge" section allocated more
       than its steady-state budget (bytes per edge over a ~1e5-edge
       instance; see doc/ALGORITHMS.md "Flat core & memory
       discipline").  Budgets are several times the measured values,
       so tripping one means a kernel re-grew a per-edge allocation
       path, not that the timer was noisy.

   Experiments with a baseline under [min_wall] seconds are reported
   but never gated: at that scale the numbers are timer noise.  The
   speedup floor and allocation budgets gate the CURRENT run only, so
   a baseline from an older bench format stays usable.

   The parser is a string scraper matched to our own writer's output —
   the tree has no JSON dependency and does not want one for this. *)

let tolerance = ref 0.25
let min_wall = 0.05
let speedup_floor = 1.6

(* bytes allocated per edge on the huge instance, with 3-5x headroom
   over the values measured at the budget's introduction (greedy ~200,
   hetero ~620, even-opt ~10900) so GC/runtime drift across OCaml
   versions cannot trip it but a rewritten kernel that allocates per
   edge per round will *)
let alloc_budgets =
  [ ("greedy", 1024.0); ("hetero", 4096.0); ("even-opt", 32768.0) ]

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error msg ->
    Printf.eprintf "gate: %s\n" msg;
    exit 2

(* next occurrence of [needle] in [hay] at or after [from] *)
let find_from hay needle from =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go from

(* The top-level section ["key": open ... close] as a substring, e.g.
   the "experiments" array or the "huge" object.  Our writer indents
   top-level sections by two spaces, so the matching close delimiter is
   the first "\n  ]" / "\n  }" after the opener — nested arrays and
   records sit deeper and never match it. *)
let section hay ~key ~open_ ~close =
  let pat = Printf.sprintf "\"%s\": %c" key open_ in
  match find_from hay pat 0 with
  | None -> None
  | Some i -> (
      let start = i + String.length pat in
      match find_from hay (Printf.sprintf "\n  %c" close) start with
      | None -> None
      | Some stop -> Some (String.sub hay start (stop - start)))

let scrape_string hay ~key ~from =
  (* "key": "value" *)
  let pat = Printf.sprintf "\"%s\": \"" key in
  match find_from hay pat from with
  | None -> None
  | Some i ->
      let start = i + String.length pat in
      let stop = String.index_from hay start '"' in
      Some (String.sub hay start (stop - start), stop)

let scrape_float hay ~key ~from =
  let pat = Printf.sprintf "\"%s\": " key in
  match find_from hay pat from with
  | None -> None
  | Some i ->
      let start = i + String.length pat in
      let stop = ref start in
      let n = String.length hay in
      while
        !stop < n
        && (match hay.[!stop] with
           | '0' .. '9' | '.' | '-' | 'e' | 'E' | '+' -> true
           | _ -> false)
      do
        incr stop
      done;
      float_of_string_opt (String.sub hay start (!stop - start))

(* every { "name": ..., "wall_s": ... } record of the experiments
   array only — the huge section carries per-solver "name"/"wall_s"
   records of its own, which must not masquerade as experiments *)
let experiments text =
  match section text ~key:"experiments" ~open_:'[' ~close:']' with
  | None -> []
  | Some body ->
      let rec go from acc =
        match scrape_string body ~key:"name" ~from with
        | None -> List.rev acc
        | Some (name, after) -> (
            match scrape_float body ~key:"wall_s" ~from:after with
            | None -> List.rev acc
            | Some w -> go (after + 1) ((name, w) :: acc))
      in
      go 0 []

(* all "identical_schedules" assertions — one per parallel section *)
let identical_schedules text =
  let pat = "\"identical_schedules\": " in
  let rec go from acc =
    match find_from text pat from with
    | None -> List.rev acc
    | Some i ->
        let start = i + String.length pat in
        let v = String.length text >= start + 4 && String.sub text start 4 = "true" in
        go (start + 1) (v :: acc)
  in
  go 0 []

(* speedup of the jobs=[jobs] run inside a section's "runs" array *)
let speedup_at section_body ~jobs =
  match find_from section_body (Printf.sprintf "\"jobs\": %d" jobs) 0 with
  | None -> None
  | Some i -> scrape_float section_body ~key:"speedup" ~from:i

(* bytes_per_edge of the named solver inside the huge section *)
let bytes_per_edge huge_body ~solver =
  match find_from huge_body (Printf.sprintf "\"name\": %S" solver) 0 with
  | None -> None
  | Some i -> scrape_float huge_body ~key:"bytes_per_edge" ~from:i

let () =
  let positional = ref [] in
  let rec parse = function
    | "--tolerance" :: v :: rest ->
        (match float_of_string_opt v with
        | Some t when t > 0.0 -> tolerance := t
        | _ ->
            prerr_endline "gate: --tolerance needs a positive float";
            exit 2);
        parse rest
    | a :: rest ->
        positional := a :: !positional;
        parse rest
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let base_path, cur_path =
    match List.rev !positional with
    | [ b; c ] -> (b, c)
    | _ ->
        prerr_endline "usage: gate BASELINE.json CURRENT.json [--tolerance T]";
        exit 2
  in
  let base = read_file base_path and cur = read_file cur_path in
  let base_exps = experiments base and cur_exps = experiments cur in
  if base_exps = [] then begin
    Printf.eprintf "gate: no experiments found in %s\n" base_path;
    exit 2
  end;
  if cur_exps = [] then begin
    Printf.eprintf "gate: no experiments found in %s\n" cur_path;
    exit 2
  end;
  Printf.printf "perf gate: %s -> %s (tolerance %.0f%%)\n\n" base_path cur_path
    (100.0 *. !tolerance);
  Printf.printf "%-12s %10s %10s %8s  %s\n" "experiment" "base (s)" "cur (s)"
    "ratio" "verdict";
  let failed = ref false in
  List.iter
    (fun (name, b) ->
      match List.assoc_opt name cur_exps with
      | None -> Printf.printf "%-12s %10.3f %10s %8s  missing from current\n" name b "-" "-"
      | Some c ->
          let ratio = if b > 0.0 then c /. b else 1.0 in
          let verdict =
            if b < min_wall then "ok (below noise floor, not gated)"
            else if ratio > 1.0 +. !tolerance then begin
              failed := true;
              "REGRESSION"
            end
            else "ok"
          in
          Printf.printf "%-12s %10.3f %10.3f %7.2fx  %s\n" name b c ratio
            verdict)
    base_exps;
  (match identical_schedules cur with
  | [] -> ()
  | flags when List.for_all Fun.id flags ->
      Printf.printf "\nidentical schedules across --jobs: yes (%d section%s)\n"
        (List.length flags)
        (if List.length flags = 1 then "" else "s")
  | _ ->
      Printf.printf
        "\nidentical schedules across --jobs: NO — determinism break\n";
      failed := true);
  (* hard speedup floor — only meaningful where 4 domains exist; a
     clamped-cpuset runner (recommended_domains < 4) reports instead
     of gating, so the floor cannot fail for want of hardware *)
  let domains =
    match scrape_float cur ~key:"recommended_domains" ~from:0 with
    | Some d -> int_of_float d
    | None -> 1
  in
  let check_floor label body =
    match speedup_at body ~jobs:4 with
    | None -> ()
    | Some s ->
        if domains >= 4 then
          if s >= speedup_floor then
            Printf.printf "%s speedup at 4 domains: %.2fx (floor %.1fx) ok\n"
              label s speedup_floor
          else begin
            Printf.printf
              "%s speedup at 4 domains: %.2fx — BELOW FLOOR %.1fx\n" label s
              speedup_floor;
            failed := true
          end
        else
          Printf.printf
            "%s speedup at 4 domains: %.2fx (floor not gated: %d domain%s \
             recommended here)\n"
            label s domains
            (if domains = 1 then "" else "s")
  in
  (match section cur ~key:"parallel" ~open_:'{' ~close:'}' with
  | None -> ()
  | Some body ->
      print_newline ();
      check_floor "e9 pipeline" body);
  (match section cur ~key:"huge" ~open_:'{' ~close:'}' with
  | None -> ()
  | Some body ->
      check_floor "e11 even-opt" body;
      List.iter
        (fun (solver, budget) ->
          match bytes_per_edge body ~solver with
          | None -> ()
          | Some bpe ->
              if bpe <= budget then
                Printf.printf
                  "e11 %-8s allocation: %8.1f bytes/edge (budget %.0f) ok\n"
                  solver bpe budget
              else begin
                Printf.printf
                  "e11 %-8s allocation: %8.1f bytes/edge — OVER BUDGET %.0f\n"
                  solver bpe budget;
                failed := true
              end)
        alloc_budgets);
  (* E12 service throughput: items/sec at jobs=1, gated against the
     baseline's section with the same tolerance as wall time (inverse
     direction: fewer items per second is the regression) *)
  let service_tput text =
    match section text ~key:"service" ~open_:'{' ~close:'}' with
    | None -> None
    | Some body -> (
        match find_from body "\"jobs\": 1" 0 with
        | None -> None
        | Some i ->
            Option.map
              (fun t -> (body, t))
              (scrape_float body ~key:"items_per_sec" ~from:i))
  in
  (match (service_tput base, service_tput cur) with
  | None, None -> ()
  | None, Some (body, t) ->
      let p50 = scrape_float body ~key:"p50" ~from:0
      and p99 = scrape_float body ~key:"p99" ~from:0 in
      Printf.printf
        "\nserve throughput: %.0f items/sec (p50=%.0f p99=%.0f rounds; no \
         baseline section, not gated)\n"
        t
        (Option.value ~default:0.0 p50)
        (Option.value ~default:0.0 p99)
  | Some _, None ->
      Printf.printf
        "\nserve throughput: section missing from current — REGRESSION\n";
      failed := true
  | Some (_, tb), Some (body, tc) ->
      let p50 = scrape_float body ~key:"p50" ~from:0
      and p99 = scrape_float body ~key:"p99" ~from:0 in
      let floor = tb /. (1.0 +. !tolerance) in
      if tc >= floor then
        Printf.printf
          "\nserve throughput: %.0f items/sec vs baseline %.0f (floor %.0f) \
           ok; p50=%.0f p99=%.0f rounds\n"
          tc tb floor
          (Option.value ~default:0.0 p50)
          (Option.value ~default:0.0 p99)
      else begin
        Printf.printf
          "\nserve throughput: %.0f items/sec — BELOW %.0f (baseline %.0f / \
           tolerance) — REGRESSION\n"
          tc floor tb;
        failed := true
      end);
  (* E13 distributed: the flight-log identity is covered by the
     identical_schedules sweep above; here we require the section not
     to vanish (the identity assertion silently disappearing would be
     the regression) and report the protocol overhead at each worker
     count *)
  let dist_section text = section text ~key:"distributed" ~open_:'{' ~close:'}' in
  (match (dist_section base, dist_section cur) with
  | None, None -> ()
  | Some _, None ->
      Printf.printf
        "\ndistributed: section missing from current — REGRESSION\n";
      failed := true
  | _, Some body ->
      let rec overheads from acc =
        match scrape_float body ~key:"workers" ~from with
        | None -> List.rev acc
        | Some w -> (
            (* advance past this record before the next scan *)
            let from' =
              match find_from body "}" from with
              | Some i -> i + 1
              | None -> String.length body
            in
            match scrape_float body ~key:"overhead" ~from with
            | None -> overheads from' acc
            | Some o -> overheads from' ((int_of_float w, o) :: acc))
      in
      Printf.printf "\ndistributed overhead vs in-process engine:%s\n"
        (String.concat ""
           (List.map
              (fun (w, o) -> Printf.sprintf " N=%d %.1fx" w o)
              (overheads 0 []))));
  (* E14 SLA: identical_schedules is swept above; the section must not
     vanish once the baseline has it, and the reordering post-pass must
     still be makespan-preserving (reordered rounds == baseline rounds
     in the artifact itself, not just in bench's in-process assert) *)
  let sla_section text = section text ~key:"sla" ~open_:'{' ~close:'}' in
  let sla_variant body name key =
    match find_from body (Printf.sprintf "\"name\": %S" name) 0 with
    | None -> None
    | Some i -> scrape_float body ~key ~from:i
  in
  (match (sla_section base, sla_section cur) with
  | None, None -> ()
  | Some _, None ->
      Printf.printf "\nsla: section missing from current — REGRESSION\n";
      failed := true
  | _, Some body -> (
      let v name key = sla_variant body name key in
      match
        ( v "baseline" "rounds", v "reordered" "rounds",
          v "baseline" "weighted_sum", v "sla-greedy" "weighted_sum",
          v "sla-greedy" "rounds" )
      with
      | Some br, Some rr, Some bw, Some gw, Some gr ->
          if rr <> br then begin
            Printf.printf
              "\nsla: reorder changed the makespan (%.0f -> %.0f rounds) — \
               REGRESSION\n"
              br rr;
            failed := true
          end
          else
            Printf.printf
              "\nsla: weighted sum %.0f -> %.0f (sla-greedy), makespan \
               preserved by reorder; price of fairness %+.0f rounds\n"
              bw gw (gr -. br)
      | _ ->
          Printf.printf "\nsla: section malformed — REGRESSION\n";
          failed := true));
  if !failed then begin
    Printf.printf "\nGATE FAILED\n";
    exit 1
  end
  else Printf.printf "\ngate passed\n"
